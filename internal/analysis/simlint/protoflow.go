package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"charmgo/internal/analysis/framework"
)

// This file builds the whole-program context the protoflow analyzer
// family (creditbalance, flightlifecycle, eventtotality, boundedretry)
// shares: the `//simlint:proto` protocol bindings and the syntactic
// facts (event emissions, function references, credit-field writers)
// their typestate machines consume.
//
// The annotation grammar (DESIGN.md §6 "Protocol typestate rules"; also
// printed by `simlint -rules`):
//
//	//simlint:proto credit window            struct field: a per-connection SMSG credit window
//	//simlint:proto credit account           struct field: the global in-flight credit account
//	//simlint:proto credit consume           func doc: consumes one credit (window and account
//	                                         move +1 together, or not at all on refusal paths)
//	//simlint:proto credit return            func doc: returns one credit (-1 together, or 0 on
//	                                         the no-connection / flight-launch paths)
//	//simlint:proto credit drain             func doc: re-issues queued sends on EvCreditReturn
//	//simlint:proto flight record            type doc: a pooled deferred-completion record
//	//simlint:proto flight oneshot           type doc: a reusable completion record with a
//	                                         pending flag instead of pool retirement
//	//simlint:proto flight pending           struct field: the oneshot record's pending marker
//	//simlint:proto flight complete          func doc: a flight's terminal completion callback
//	//simlint:proto flight defer             func doc: a callback that re-defers the flight
//	//simlint:proto event kind <class>...    const doc/comment: classifies an event kind; class
//	                                         "polled" means no dispatcher must handle it
//	//simlint:proto event dispatch <class> [Kind...]
//	                                         func doc: the function dispatches every kind of
//	                                         <class>; extra Kind names are accounted arms the
//	                                         body handles without naming the constant
//	//simlint:proto retry bounded            func doc: a fault handler that re-posts failed
//	                                         descriptors under an Attempts guard with backoff
//	//simlint:proto retry post               func doc: a posting verb re-posts flow through
//	                                         (GNI.PostFma / PostRdma / the rdmaUnit selector)

// protoFn is one in-scope declared function with its proto annotations.
type protoFn struct {
	id      string
	display string
	pkg     *framework.Package
	decl    *ast.FuncDecl
	anns    [][]string // each //simlint:proto line, tokenized after the verb
}

// eventKind is one labeled event constant.
type eventKind struct {
	id        string // "pkg/path.Name"
	name      string
	classes   []string
	typeKey   string // "pkg/path.TypeName"
	pkgPath   string
	pos       token.Pos
	emissions []token.Pos // composite `Type: Kind` / `.Type = Kind` sites
}

// protoDispatcher is one `event dispatch` annotated handler.
type protoDispatcher struct {
	fn     *protoFn
	class  string
	extras map[string]bool // kind names accounted without a body reference
	refs   map[string]bool // labeled const ids the body references
}

// protoCtx is the shared protoflow context, built once per Run.
type protoCtx struct {
	prog *framework.Program

	fns map[string]*protoFn // every in-scope declared function

	creditFields  map[string]string // "pkg.Type.field" -> "window" | "account"
	flightTypes   map[string]string // "pkg.Type" -> "record" | "oneshot"
	pendingFields map[string]bool   // "pkg.Type.field" oneshot pending markers

	eventConsts map[string]*eventKind // "pkg.Name"
	eventTypes  map[string]bool       // typeKeys that carry labeled kinds
	unlabeled   []*eventKind          // consts of a labeled type without a label
	dispatchers []*protoDispatcher

	refs          map[string]map[string]bool // funcID -> referenced funcIDs
	creditWriters map[string]bool            // funcID -> direct annotated-field write
	creditTouch   map[string]bool            // funcID -> transitively reaches a writer
	creditReach   map[string]bool            // funcIDs reachable from credit-role fns
}

// protoContext builds (once per Run) the shared protoflow context.
func protoContext(pass *framework.Pass) *protoCtx {
	return pass.Prog.Memo("protoflow", func() any {
		c := &protoCtx{
			prog:          pass.Prog,
			fns:           make(map[string]*protoFn),
			creditFields:  make(map[string]string),
			flightTypes:   make(map[string]string),
			pendingFields: make(map[string]bool),
			eventConsts:   make(map[string]*eventKind),
			eventTypes:    make(map[string]bool),
			refs:          make(map[string]map[string]bool),
			creditWriters: make(map[string]bool),
			creditTouch:   make(map[string]bool),
		}
		c.collectAnnotations()
		c.collectBodies()
		return c
	}).(*protoCtx)
}

// protoAnnLines extracts `//simlint:proto` lines from a comment group,
// tokenized ("credit window" -> ["credit", "window"]).
func protoAnnLines(cgs ...*ast.CommentGroup) [][]string {
	var out [][]string
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//simlint:proto")
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			if f := strings.Fields(rest); len(f) > 0 {
				out = append(out, f)
			}
		}
	}
	return out
}

// annIs matches one tokenized annotation line against a prefix.
func annIs(ann []string, words ...string) bool {
	if len(ann) < len(words) {
		return false
	}
	for i, w := range words {
		if ann[i] != w {
			return false
		}
	}
	return true
}

// collectAnnotations walks every in-scope declaration for proto bindings.
func (c *protoCtx) collectAnnotations() {
	for _, pkg := range c.prog.Pkgs {
		if !simulationScope(pkg.PkgPath) {
			continue
		}
		for _, f := range pkg.Syntax {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					c.addFunc(pkg, d)
				case *ast.GenDecl:
					c.addGenDecl(pkg, d)
				}
			}
		}
	}
	// Totality pre-check input: every const of a type that carries labeled
	// kinds must itself be labeled.
	for _, pkg := range c.prog.Pkgs {
		if !simulationScope(pkg.PkgPath) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			cn, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			tk := namedTypeKey(cn.Type())
			if tk == "" || !c.eventTypes[tk] {
				continue
			}
			id := pkg.Types.Path() + "." + cn.Name()
			if _, labeled := c.eventConsts[id]; !labeled {
				c.unlabeled = append(c.unlabeled, &eventKind{
					id: id, name: cn.Name(), typeKey: tk, pkgPath: pkg.PkgPath, pos: cn.Pos(),
				})
			}
		}
	}
	sort.Slice(c.unlabeled, func(i, j int) bool { return c.unlabeled[i].id < c.unlabeled[j].id })
	sort.Slice(c.dispatchers, func(i, j int) bool { return c.dispatchers[i].fn.id < c.dispatchers[j].fn.id })
}

func (c *protoCtx) addFunc(pkg *framework.Package, d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
	id := framework.FuncID(fn)
	if id == "" {
		return
	}
	if _, exists := c.fns[id]; exists {
		// Test-variant packages re-present the base package's files; the
		// first sighting wins so dispatchers are not double-registered.
		return
	}
	pf := &protoFn{id: id, display: d.Name.Name, pkg: pkg, decl: d, anns: protoAnnLines(d.Doc)}
	c.fns[id] = pf
	for _, ann := range pf.anns {
		if annIs(ann, "event", "dispatch") && len(ann) >= 3 {
			disp := &protoDispatcher{fn: pf, class: ann[2], extras: make(map[string]bool)}
			for _, k := range ann[3:] {
				disp.extras[k] = true
			}
			c.dispatchers = append(c.dispatchers, disp)
		}
	}
}

func (c *protoCtx) addGenDecl(pkg *framework.Package, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			for _, ann := range protoAnnLines(d.Doc, ts.Doc, ts.Comment) {
				if annIs(ann, "flight") && len(ann) >= 2 && (ann[1] == "record" || ann[1] == "oneshot") {
					c.flightTypes[pkg.Types.Path()+"."+ts.Name.Name] = ann[1]
				}
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, fld := range st.Fields.List {
				for _, ann := range protoAnnLines(fld.Doc, fld.Comment) {
					for _, name := range fld.Names {
						key := pkg.Types.Path() + "." + ts.Name.Name + "." + name.Name
						switch {
						case annIs(ann, "credit", "window"):
							c.creditFields[key] = "window"
						case annIs(ann, "credit", "account"):
							c.creditFields[key] = "account"
						case annIs(ann, "flight", "pending"):
							c.pendingFields[key] = true
						}
					}
				}
			}
		}
	case token.CONST:
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			cgs := []*ast.CommentGroup{vs.Doc, vs.Comment}
			if len(d.Specs) == 1 {
				// Unparenthesized `const X = ...`: the doc sits on the GenDecl.
				cgs = append(cgs, d.Doc)
			}
			for _, ann := range protoAnnLines(cgs...) {
				if !annIs(ann, "event", "kind") || len(ann) < 3 {
					continue
				}
				for _, name := range vs.Names {
					cn, ok := pkg.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					id := pkg.Types.Path() + "." + cn.Name()
					tk := namedTypeKey(cn.Type())
					c.eventConsts[id] = &eventKind{
						id: id, name: cn.Name(), classes: ann[2:],
						typeKey: tk, pkgPath: pkg.PkgPath, pos: name.Pos(),
					}
					if tk != "" {
						c.eventTypes[tk] = true
					}
				}
			}
		}
	}
}

// collectBodies walks every in-scope function body once for the
// syntactic facts: the reference graph, direct credit-field writers,
// event emissions, and dispatcher arm references.
func (c *protoCtx) collectBodies() {
	byID := make(map[string]*protoDispatcher)
	for _, d := range c.dispatchers {
		d.refs = make(map[string]bool)
		byID[d.fn.id] = d
	}
	for _, pf := range c.fns {
		refs := make(map[string]bool)
		disp := byID[pf.id]
		info := pf.pkg.TypesInfo
		ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				switch obj := info.Uses[n].(type) {
				case *types.Func:
					if fid := framework.FuncID(obj); fid != "" {
						refs[fid] = true
					}
				case *types.Const:
					if disp != nil && obj.Pkg() != nil {
						id := obj.Pkg().Path() + "." + obj.Name()
						if _, ok := c.eventConsts[id]; ok {
							disp.refs[id] = true
						}
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal emission: Event{..., Type: Kind, ...}.
				if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Type" {
					c.noteEmission(info, n.Value, n.Pos())
				}
			case *ast.AssignStmt:
				// Assignment emission: ev.Type = Kind.
				for i, l := range n.Lhs {
					if sel, ok := l.(*ast.SelectorExpr); ok && sel.Sel.Name == "Type" && i < len(n.Rhs) {
						c.noteEmission(info, n.Rhs[i], n.Pos())
					}
				}
				if key := c.assignedCreditField(info, n); key != "" {
					c.creditWriters[pf.id] = true
				}
			case *ast.IncDecStmt:
				if sel, ok := n.X.(*ast.SelectorExpr); ok && c.selectorCreditRole(info, sel) != "" {
					c.creditWriters[pf.id] = true
				}
			}
			return true
		})
		c.refs[pf.id] = refs
	}
}

// noteEmission records an emission site when the expression resolves to
// a labeled event constant.
func (c *protoCtx) noteEmission(info *types.Info, v ast.Expr, pos token.Pos) {
	if k := c.constKind(info, v); k != nil {
		k.emissions = append(k.emissions, pos)
	}
}

// constKind resolves an expression to the labeled event kind it names.
func (c *protoCtx) constKind(info *types.Info, e ast.Expr) *eventKind {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if cn, ok := info.Uses[id].(*types.Const); ok && cn.Pkg() != nil {
		return c.eventConsts[cn.Pkg().Path()+"."+cn.Name()]
	}
	return nil
}

// selectorCreditRole resolves x.f to "window"/"account" when f is an
// annotated credit field.
func (c *protoCtx) selectorCreditRole(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	return c.creditFields[fieldKeyOfType(s.Recv(), sel.Sel.Name)]
}

// assignedCreditField reports the credit-field key an assignment writes,
// "" when it touches none.
func (c *protoCtx) assignedCreditField(info *types.Info, as *ast.AssignStmt) string {
	for _, l := range as.Lhs {
		if sel, ok := l.(*ast.SelectorExpr); ok {
			if role := c.selectorCreditRole(info, sel); role != "" {
				return fieldKeyOfSel(info, sel)
			}
		}
	}
	return ""
}

// fieldKeyOfSel is selectorFieldKey phrased on type information alone, so
// protocol classifiers can run under summary-solve scratch passes.
func fieldKeyOfSel(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	return fieldKeyOfType(s.Recv(), sel.Sel.Name)
}

// fnAnn returns the first proto annotation of fn matching the prefix
// words, or nil.
func (c *protoCtx) fnAnn(id string, words ...string) []string {
	pf, ok := c.fns[id]
	if !ok {
		return nil
	}
	for _, ann := range pf.anns {
		if annIs(ann, words...) {
			return ann
		}
	}
	return nil
}

// touchesCredit reports whether the function (transitively) reaches a
// direct credit-field writer through the reference graph.
func (c *protoCtx) touchesCredit(id string) bool {
	if v, ok := c.creditTouch[id]; ok {
		return v
	}
	seen := map[string]bool{id: true}
	queue := []string{id}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		if c.creditWriters[cur] {
			found = true
			break
		}
		for next := range c.refs[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	c.creditTouch[id] = found
	return found
}

// flightPtrType resolves a type to the flight kind ("record"/"oneshot")
// and type key when it is a pointer to an annotated flight type.
func (c *protoCtx) flightPtrType(t types.Type) (kind, typeKey string) {
	if t == nil {
		return "", ""
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return "", ""
	}
	tk := namedTypeKey(ptr.Elem())
	if tk == "" {
		return "", ""
	}
	return c.flightTypes[tk], tk
}

// namedTypeKey renders "pkg/path.TypeName" for (possibly pointer-to)
// named types, "" otherwise.
func namedTypeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// inPass reports whether a position belongs to the pass's package — the
// report-once discipline for whole-program findings (each analyzer runs
// once per package; a finding is reported by the package that owns the
// flagged declaration).
func inPass(pass *framework.Pass, pkgPath string) bool {
	return pass.PkgPath == pkgPath || strings.TrimSuffix(pass.PkgPath, "_test") == pkgPath
}

// scopeFuncs lists the context functions declared in the pass's package,
// in source order.
func (c *protoCtx) scopeFuncs(pass *framework.Pass) []*protoFn {
	var out []*protoFn
	for _, pf := range c.fns {
		if pf.pkg.PkgPath == pass.PkgPath {
			out = append(out, pf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// creditRole reports the function's declared credit role ("consume",
// "return", "drain"), or "".
func (c *protoCtx) creditRole(id string) string {
	if ann := c.fnAnn(id, "credit"); len(ann) >= 2 {
		return ann[1]
	}
	return ""
}

// flightRole reports the function's declared flight role ("complete",
// "defer"), or "".
func (c *protoCtx) flightRole(id string) string {
	if ann := c.fnAnn(id, "flight"); len(ann) >= 2 {
		return ann[1]
	}
	return ""
}

// retryRole reports the function's declared retry role ("bounded",
// "post"), or "".
func (c *protoCtx) retryRole(id string) string {
	if ann := c.fnAnn(id, "retry"); len(ann) >= 2 {
		return ann[1]
	}
	return ""
}

// creditReachable reports whether id is the transitive-reference closure
// of some credit-role-annotated function (computed once, cached).
func (c *protoCtx) creditReachable(id string) bool {
	if c.creditReach == nil {
		c.creditReach = make(map[string]bool)
		var queue []string
		for fid := range c.fns {
			if c.creditRole(fid) != "" {
				c.creditReach[fid] = true
				queue = append(queue, fid)
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for next := range c.refs[cur] {
				if !c.creditReach[next] {
					c.creditReach[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return c.creditReach[id]
}

// staticCalleeID resolves a call's static callee to its callgraph FuncID,
// "" for dynamic calls (method values, stored function variables).
func staticCalleeID(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return framework.FuncID(fn)
	}
	return ""
}

// funcValueArg reports whether any argument passes a declared function as
// a value (the closure-free completion-callback idiom: the launch verb of
// the flight protocol).
func funcValueArg(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		var id *ast.Ident
		switch a := a.(type) {
		case *ast.Ident:
			id = a
		case *ast.SelectorExpr:
			id = a.Sel
		default:
			continue
		}
		if _, ok := info.Uses[id].(*types.Func); ok {
			return true
		}
	}
	return false
}

// inspectNode walks one CFG block node's executable subtree: function
// literals do not execute at their definition site, a range statement
// contributes only its header expressions, and a type-switch clause only
// its binding (cfg.go "Node granularity").
func inspectNode(n ast.Node, f func(ast.Node) bool) {
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			switch mm := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CaseClause:
				return false
			case *ast.RangeStmt:
				if !f(mm) {
					return false
				}
				for _, e := range []ast.Expr{mm.Key, mm.Value, mm.X} {
					if e != nil {
						walk(e)
					}
				}
				return false
			}
			return f(m)
		})
	}
	walk(n)
}

// findFuncInfo locates the pass's FuncInfo for a declaration, sharing the
// pass-level CFG cache across the protoflow analyzers of one package.
func findFuncInfo(pass *framework.Pass, decl *ast.FuncDecl) *framework.FuncInfo {
	for _, fi := range pass.Functions() {
		if fi.Decl == decl {
			return fi
		}
	}
	return nil
}
