package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"charmgo/internal/analysis/framework"
)

// This file is the shared ownership engine behind the poolleak and
// useafterrelease analyzers: a forward dataflow over the framework CFG
// tracking, per local variable, whether it *owns* a pooled value (must
// release or transfer it), is *bound* to a pooled map entry (becomes
// owning when the entry is deleted), or has been *released* (any further
// use is a bug). DESIGN.md "Ownership rules" documents the vocabulary;
// mem.FreeList / mem.SlabCache document the acquire/release surface.
//
// Acquire sites (variable becomes owned):
//   - x := pool.Get()            for a mem.FreeList or mem.SlabCache
//   - x := f(...)                where f is annotated //simlint:acquire
//   - x := v.(*T) / case *T:     where *T is pooled in this package
//     (T appears as a type argument of a mem.FreeList declared here)
//   - p, ok := m[k]; delete(m,k) map lookup binds p to the entry; the
//     delete makes p the sole owner (lookup without delete stays a borrow)
//
// Release sites: pool.Put(x) or a call annotated //simlint:release.
//
// Ownership transfers (obligation handed off): passing the variable as a
// call argument, storing it into a field/map/slice/composite/global,
// returning it, sending it on a channel, capturing it in a closure, or
// taking its address. Panic paths are exempt (CFG routes them to
// PanicExit).

// Variable ownership state bits.
const (
	stBound    uint8 = 1 << iota // bound to a pooled-elem map entry
	stOwned                      // owns a pooled value: must release or transfer
	stReleased                   // released back to the pool: must not be used
)

// vstate is one variable's ownership fact. pos is the acquire site (or
// the delete that promoted a bound entry to owned); rel the release site.
type vstate struct {
	bits uint8
	pos  token.Pos
	m    types.Object // map object the variable is bound to (stBound)
	rel  token.Pos
}

// ownFact maps each tracked local to its state. Facts are treated as
// immutable by the solver; the transfer function copies on first write.
type ownFact map[*types.Var]vstate

// ownEngine ties the transfer function to one pass's type information.
type ownEngine struct {
	pass   *framework.Pass
	pooled map[*types.TypeName]bool
}

func newOwnEngine(pass *framework.Pass) *ownEngine {
	return &ownEngine{pass: pass, pooled: pooledElems(pass)}
}

// pooledElems collects the element types T pooled through a
// mem.FreeList[T] declared in this package (struct fields or package
// vars): values of type *T circulate through Get/Put, so type assertions
// and map entries of those types carry ownership.
func pooledElems(pass *framework.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	add := func(t types.Type) {
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "FreeList" ||
			named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "mem" {
			return
		}
		if args := named.TypeArgs(); args != nil && args.Len() == 1 {
			if elem, ok := args.At(0).(*types.Named); ok {
				out[elem.Obj()] = true
			}
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.TypeName:
			if st, ok := obj.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					add(st.Field(i).Type())
				}
			}
		case *types.Var:
			add(obj.Type())
		}
	}
	return out
}

// pooledPtr reports whether t is *T for a T pooled in this package.
func (e *ownEngine) pooledPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && e.pooled[named.Obj()]
}

// poolOp classifies a call's effect on ownership.
type poolOp int

const (
	opNone    poolOp = iota
	opAcquire        // FreeList/SlabCache Get, or //simlint:acquire
	opRelease        // FreeList/SlabCache Put, or //simlint:release
)

// calleeOf resolves the declared function a call invokes (nil for
// builtins, function values, and calls it cannot see through).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvNamed returns the named receiver type of a method (nil otherwise).
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (e *ownEngine) classify(call *ast.CallExpr) poolOp {
	fn := calleeOf(e.pass.TypesInfo, call)
	if fn == nil {
		return opNone
	}
	if recv := recvNamed(fn); recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Name() == "mem" {
		switch recv.Obj().Name() {
		case "FreeList", "SlabCache":
			switch fn.Name() {
			case "Get":
				return opAcquire
			case "Put":
				return opRelease
			}
		}
	}
	if e.pass.Prog.FuncAnnotated(fn, "acquire") {
		return opAcquire
	}
	if e.pass.Prog.FuncAnnotated(fn, "release") {
		return opRelease
	}
	return opNone
}

// localVar resolves an assignment target to a trackable local variable
// (nil for blank, fields, and non-identifier targets).
func localVar(pass *framework.Pass, x ast.Expr) *types.Var {
	id, ok := x.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// exprObj resolves a map expression (identifier or field selector) to a
// stable object, so a lookup and a later delete on the same map correlate.
func exprObj(pass *framework.Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[x]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

// transfer is the dataflow transfer function over one CFG block node.
func (e *ownEngine) transfer(in ownFact, n ast.Node) ownFact {
	s := &ownScan{e: e, out: in}
	s.node(n)
	return s.out
}

func (e *ownEngine) join(a, b ownFact) ownFact {
	out := make(ownFact, len(a)+len(b))
	for v, st := range a {
		out[v] = st
	}
	for v, st := range b {
		if cur, ok := out[v]; ok {
			out[v] = mergeState(cur, st)
		} else {
			out[v] = st
		}
	}
	return out
}

// mergeState unions path states: bits OR, earliest positions win, the
// established map binding wins. Monotone, so the fixpoint terminates.
func mergeState(a, b vstate) vstate {
	a.bits |= b.bits
	if b.pos != token.NoPos && (a.pos == token.NoPos || b.pos < a.pos) {
		a.pos = b.pos
	}
	if b.rel != token.NoPos && (a.rel == token.NoPos || b.rel < a.rel) {
		a.rel = b.rel
	}
	if a.m == nil {
		a.m = b.m
	}
	return a
}

func (e *ownEngine) equal(a, b ownFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, st := range a {
		if b[v] != st {
			return false
		}
	}
	return true
}

// ownScan applies one node's ownership effects, copying the fact on the
// first write.
type ownScan struct {
	e      *ownEngine
	out    ownFact
	cloned bool
}

func (s *ownScan) mutable() {
	if s.cloned {
		return
	}
	cp := make(ownFact, len(s.out)+1)
	for k, v := range s.out {
		cp[k] = v
	}
	s.out = cp
	s.cloned = true
}

func (s *ownScan) set(v *types.Var, st vstate) {
	if cur, ok := s.out[v]; ok && cur == st {
		return
	}
	s.mutable()
	s.out[v] = st
}

func (s *ownScan) drop(v *types.Var) {
	if _, ok := s.out[v]; !ok {
		return
	}
	s.mutable()
	delete(s.out, v)
}

// consume transfers ownership out of v (call argument, store, return,
// send, capture). The released marker survives: using a released value
// anywhere stays a bug.
func (s *ownScan) consume(v *types.Var) {
	st, ok := s.out[v]
	if !ok {
		return
	}
	st.bits &^= stOwned | stBound
	if st.bits == 0 {
		s.drop(v)
		return
	}
	s.set(v, st)
}

// node processes one CFG block node, honoring the block granularity
// contract: a RangeStmt stands for its range operands, a type-switch
// CaseClause for its per-case binding.
func (s *ownScan) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		s.walk(n.X)
	case *ast.CaseClause:
		if v, ok := s.e.pass.TypesInfo.Implicits[n].(*types.Var); ok && s.e.pooledPtr(v.Type()) {
			s.set(v, vstate{bits: stOwned, pos: n.Pos()})
		}
	default:
		s.walk(n)
	}
}

// walk descends a node, handling every ownership-relevant construct and
// recursing generically through the rest.
func (s *ownScan) walk(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n)
			return false
		case *ast.ValueSpec:
			s.valueSpec(n)
			return false
		case *ast.CallExpr:
			s.call(n)
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				s.consumeOrWalk(r)
			}
			return false
		case *ast.SendStmt:
			s.walk(n.Chan)
			s.consumeOrWalk(n.Value)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					s.consumeOrWalk(kv.Value)
				} else {
					s.consumeOrWalk(el)
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				s.consumeOrWalk(n.X)
				return false
			}
		case *ast.FuncLit:
			s.captures(n)
			return false
		}
		return true
	})
}

// consumeOrWalk treats a bare tracked identifier as an ownership
// transfer; anything else is scanned for nested effects.
func (s *ownScan) consumeOrWalk(x ast.Expr) {
	if id, ok := x.(*ast.Ident); ok {
		if v, ok := s.e.pass.TypesInfo.Uses[id].(*types.Var); ok {
			s.consume(v)
			return
		}
	}
	s.walk(x)
}

func (s *ownScan) assign(n *ast.AssignStmt) {
	switch {
	case len(n.Lhs) == len(n.Rhs):
		for i := range n.Rhs {
			s.assignPair(n.Lhs[i], n.Rhs[i])
		}
	case len(n.Rhs) == 1:
		// Multi-value form: comma-ok acquires bind Lhs[0]; the extra
		// targets (ok / multi-return results) are plain overwrites.
		s.assignPair(n.Lhs[0], n.Rhs[0])
		for _, l := range n.Lhs[1:] {
			if v := localVar(s.e.pass, l); v != nil {
				s.drop(v)
			}
		}
	}
}

func (s *ownScan) valueSpec(n *ast.ValueSpec) {
	if len(n.Values) == len(n.Names) {
		for i := range n.Values {
			s.assignPair(n.Names[i], n.Values[i])
		}
		return
	}
	if len(n.Values) == 1 && len(n.Names) > 1 {
		s.assignPair(n.Names[0], n.Values[0])
	}
}

func (s *ownScan) assignPair(lhs, rhs ast.Expr) {
	if st, ok := s.acquire(rhs); ok {
		if v := localVar(s.e.pass, lhs); v != nil {
			s.set(v, st)
			return
		}
		// Acquire stored straight into a field/map/slice: ownership lives
		// in the containing object (closechain's domain, not a leak here).
		s.walk(lhs)
		return
	}
	s.consumeOrWalk(rhs)
	if v := localVar(s.e.pass, lhs); v != nil {
		s.drop(v) // rebinding replaces whatever the variable held
		return
	}
	s.walk(lhs)
}

// acquire classifies an assignment RHS as an ownership source.
func (s *ownScan) acquire(rhs ast.Expr) (vstate, bool) {
	switch rhs := rhs.(type) {
	case *ast.CallExpr:
		if s.e.classify(rhs) == opAcquire {
			s.walk(rhs.Fun)
			for _, a := range rhs.Args {
				s.walk(a)
			}
			return vstate{bits: stOwned, pos: rhs.Pos()}, true
		}
	case *ast.TypeAssertExpr:
		if rhs.Type == nil { // x.(type) inside a type switch: per-case binding
			return vstate{}, false
		}
		if s.e.pooledPtr(s.e.pass.TypesInfo.Types[rhs.Type].Type) {
			return vstate{bits: stOwned, pos: rhs.Pos()}, true
		}
	case *ast.IndexExpr:
		t := s.e.pass.TypesInfo.Types[rhs.X].Type
		if t == nil {
			return vstate{}, false
		}
		if mt, ok := t.Underlying().(*types.Map); ok && s.e.pooledPtr(mt.Elem()) {
			if mObj := exprObj(s.e.pass, rhs.X); mObj != nil {
				return vstate{bits: stBound, pos: rhs.Pos(), m: mObj}, true
			}
		}
	}
	return vstate{}, false
}

func (s *ownScan) call(n *ast.CallExpr) {
	if id, ok := n.Fun.(*ast.Ident); ok {
		if b, ok := s.e.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "delete" && len(n.Args) == 2 {
				s.walk(n.Args[1])
				if mObj := exprObj(s.e.pass, n.Args[0]); mObj != nil {
					s.activateBound(mObj, n.Pos())
				}
				return
			}
			// Other builtins (append, panic, print...) consume pooled
			// arguments like ordinary calls; len/cap cannot take one.
			for _, a := range n.Args {
				s.consumeOrWalk(a)
			}
			return
		}
	}
	op := s.e.classify(n)
	s.walk(n.Fun)
	for _, a := range n.Args {
		if op == opRelease {
			s.release(a, n.Pos())
			continue
		}
		s.consumeOrWalk(a)
	}
}

func (s *ownScan) release(a ast.Expr, pos token.Pos) {
	if id, ok := a.(*ast.Ident); ok {
		if v, ok := s.e.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if st, tracked := s.out[v]; tracked {
				st.bits = stReleased
				st.rel = pos
				s.set(v, st)
				return
			}
		}
	}
	s.walk(a)
}

// activateBound promotes every variable bound to m into sole ownership:
// the map entry is gone, so the pointer the lookup returned must now be
// released or transferred.
func (s *ownScan) activateBound(m types.Object, pos token.Pos) {
	var promote []*types.Var
	for v, st := range s.out {
		if st.bits&stBound != 0 && st.m == m {
			promote = append(promote, v)
		}
	}
	for _, v := range promote {
		st := s.out[v]
		st.bits = st.bits&^stBound | stOwned
		st.pos = pos
		s.set(v, st)
	}
}

// captures consumes every tracked variable a function literal closes
// over: the closure may keep or release it at any later time.
func (s *ownScan) captures(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := s.e.pass.TypesInfo.Uses[id].(*types.Var); ok {
				s.consume(v)
			}
		}
		return true
	})
}

// solve runs the ownership dataflow over one function, returning the
// engine and flow result (nil engine when the function is skipped).
func solveOwnership(pass *framework.Pass, fi *framework.FuncInfo) (*ownEngine, *framework.FlowResult[ownFact], *framework.CFG) {
	cfg := fi.CFG()
	if cfg == nil {
		return nil, nil, nil
	}
	e := newOwnEngine(pass)
	res := framework.Forward(cfg, ownFact{}, e.transfer, e.join, e.equal)
	return e, &res, cfg
}

// sortedStates returns a fact's entries ordered by acquire position, for
// deterministic reporting.
func sortedStates(f ownFact) []*types.Var {
	vars := make([]*types.Var, 0, len(f))
	for v := range f {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := f[vars[i]], f[vars[j]]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return vars[i].Name() < vars[j].Name()
	})
	return vars
}
