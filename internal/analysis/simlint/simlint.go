// Package simlint is the repository's determinism-and-kernel-discipline
// linter. The paper's results are virtual-time measurements, so the whole
// reproduction rests on the simulator being deterministic: the same
// experiment must yield bit-identical time series on every run. Go makes
// that easy to break silently — wall-clock reads, the global math/rand
// source, map iteration order, stray goroutines — and on breaching the
// PR 1 kernel boundary (all NIC booking through internal/gemini's
// engines). Each analyzer here pins one of those invariants; DESIGN.md
// "Determinism rules" documents the contract and the `//simlint:`
// annotation grammar.
//
// Run via `go run ./cmd/simlint ./...` or `make lint`.
package simlint

import (
	"go/ast"
	"go/types"
	"strings"

	"charmgo/internal/analysis/framework"
)

// Analyzers returns the full suite in stable order: the five determinism
// analyzers from PR 2, the four ownership analyzers built on the
// CFG/dataflow engine (framework/cfg.go, dataflow.go, callgraph.go), the
// shardsafe family built on the interprocedural points-to analysis
// (framework/pointsto.go) that proves the parallel-window kernel's
// shard-ownership discipline, then the protoflow family built on the
// interprocedural typestate engine (framework/typestate.go) that proves
// the machine layers' resource protocols — credit conservation, flight
// lifecycles, event-dispatch totality, bounded retry.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		NoWallClock,
		NoGlobalRand,
		MapOrder,
		NoGoroutine,
		BookViaKernel,
		PoolLeak,
		UseAfterRelease,
		HotPathAlloc,
		CloseChain,
		ShardEscape,
		AtomicShared,
		SingleWriter,
		WindowSend,
		CreditBalance,
		FlightLifecycle,
		EventTotality,
		BoundedRetry,
	}
}

// module is the import-path root all scope rules are phrased against.
// Fixture packages use the same paths, so scoping behaves identically
// under analysistest.
const module = "charmgo"

// rel reports the module-relative package path ("" for the root package,
// "internal/sim" for charmgo/internal/sim). External test packages share
// the scope of the package they test.
func rel(pkgPath string) string {
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	if pkgPath == module {
		return ""
	}
	return strings.TrimPrefix(pkgPath, module+"/")
}

// under reports whether the module-relative path lies in any of the roots.
func under(rel string, roots ...string) bool {
	for _, r := range roots {
		if rel == r || strings.HasPrefix(rel, r+"/") {
			return true
		}
	}
	return false
}

// simulationScope reports whether a package is simulation code proper:
// the root runtime facade plus everything under internal/, minus the
// experiment harness (internal/bench — it may time wall clocks) and the
// analysis tooling itself.
func simulationScope(pkgPath string) bool {
	r := rel(pkgPath)
	if r == "" {
		return true
	}
	return under(r, "internal") && !under(r, "internal/bench", "internal/analysis")
}

// isTestFile reports whether the file holding pos is a _test.go file;
// test harnesses may keep wall-clock timing and goroutines.
func isTestFile(pass *framework.Pass, pos ast.Node) bool {
	return strings.HasSuffix(pass.File(pos.Pos()), "_test.go")
}

// pkgNameOf resolves an identifier to the package it names at an import
// site, or "" when the identifier is not a package qualifier.
func pkgNameOf(pass *framework.Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// receiverOf reports the defining package path and type name of a method's
// receiver ("", "" for non-methods and plain functions).
func receiverOf(pass *framework.Pass, sel *ast.SelectorExpr) (pkgPath, typeName string) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}
