package simlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"charmgo/internal/analysis/framework"
)

// BoundedRetry proves every re-post of a failed descriptor is bounded:
// on each path from an EvError arm to a `retry post` call carrying the
// failed descriptor, an Attempts comparison must dominate the re-post —
// otherwise a persistently failing transaction re-posts forever and the
// simulated NIC livelocks in virtual time. Failed descriptors are found
// by taint: values drawn from an event's .Desc field (directly or
// through a local). The path-sensitivity comes from the typestate
// machine — "guard seen" is a state, not a syntactic containment check,
// so a guard inside one switch arm does not excuse a re-post in
// another. Two shape rules complete the bound: a `retry bounded`
// handler must scale its backoff by the attempt count (a shift indexed
// by .Attempts), and a `credit drain` loop must stop on RCNotDone — the
// window's backpressure signal — rather than spin re-issuing into a
// closed window.
var BoundedRetry = &framework.Analyzer{
	Name: "boundedretry",
	Doc: "prove failed-descriptor re-posts are bounded: an Attempts guard " +
		"dominates every re-post path, backoff scales with the attempt count, " +
		"and drain loops yield to RCNotDone backpressure",
	Grammar: "//simlint:proto retry bounded   (func doc: fault handler re-posting under an Attempts guard)\n" +
		"//simlint:proto retry post   (func doc: a posting verb re-posts flow through)",
	Run: runBoundedRetry,
}

// retryKey is the single per-function record the guard machine tracks.
type retryKey struct{}

// retryMachine: "guard" (any Attempts comparison) moves to guarded;
// "repost" is only legal once guarded.
func retryMachine() *framework.Machine[string] {
	return framework.NewMachine("retry", "unguarded").
		Rule("unguarded", "guard", "guarded").
		Rule("guarded", "guard", "guarded").
		Rule("guarded", "repost", "guarded").
		Accept("unguarded", "guarded")
}

func retryEngine(pass *framework.Pass, c *protoCtx) *framework.Typestate[string] {
	return pass.Prog.Memo("boundedretry-engine", func() any {
		taints := make(map[ast.Node]map[*types.Var]bool)
		return &framework.Typestate[string]{
			Machine:    retryMachine(),
			Analyzer:   pass.Analyzer,
			Prog:       pass.Prog,
			SummaryKey: retryKey{},
			Classify: func(fi *framework.FuncInfo, n ast.Node, emit func(framework.TsOp)) {
				classifyRetry(c, taints, fi, n, emit)
			},
		}
	}).(*framework.Typestate[string])
}

// classifyRetry attributes guard and re-post operations to one CFG node.
func classifyRetry(c *protoCtx, taints map[ast.Node]map[*types.Var]bool, fi *framework.FuncInfo, n ast.Node, emit func(framework.TsOp)) {
	info := fi.Pass.TypesInfo
	tainted := taints[fi.Body()]
	if tainted == nil {
		tainted = descTaints(info, fi.Body())
		taints[fi.Body()] = tainted
	}
	inspectNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.BinaryExpr:
			switch m.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ:
				if mentionsAttempts(m) {
					emit(framework.TsOp{Key: retryKey{}, Verb: "guard", Pos: m.Pos()})
				}
			}
		case *ast.CallExpr:
			if !retryPostCall(c, info, m) {
				return true
			}
			for _, a := range m.Args {
				if taintedDesc(info, tainted, a) {
					emit(framework.TsOp{Key: retryKey{}, Verb: "repost", Pos: m.Pos()})
					return true
				}
			}
		}
		return true
	})
}

// retryPostCall reports whether the call posts a descriptor: its static
// callee is `retry post` annotated, directly or through a unit-selector
// call (the rdmaUnit(size)(desc, at) idiom).
func retryPostCall(c *protoCtx, info *types.Info, call *ast.CallExpr) bool {
	if id := staticCalleeID(info, call); id != "" && c.retryRole(id) == "post" {
		return true
	}
	if inner, ok := call.Fun.(*ast.CallExpr); ok {
		if id := staticCalleeID(info, inner); id != "" && c.retryRole(id) == "post" {
			return true
		}
	}
	return false
}

// descTaints collects (flow-insensitively) the locals assigned from an
// event's .Desc field.
func descTaints(info *types.Info, body ast.Node) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	if body == nil {
		return tainted
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, r := range as.Rhs {
			if !descSelector(r) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				tainted[v] = true
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				tainted[v] = true
			}
		}
		return true
	})
	return tainted
}

// taintedDesc reports whether an argument carries a failed descriptor: a
// tainted local or a direct .Desc selector.
func taintedDesc(info *types.Info, tainted map[*types.Var]bool, e ast.Expr) bool {
	if descSelector(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return tainted[v]
		}
	}
	return false
}

func descSelector(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Desc"
}

// mentionsAttempts reports whether the expression's subtree reads an
// .Attempts field.
func mentionsAttempts(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Attempts" {
			found = true
		}
		return !found
	})
	return found
}

// backoffShift reports whether the body scales something by a shift
// indexed on the attempt count — the exponential-backoff shape.
func backoffShift(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.SHL && mentionsAttempts(be.Y) {
			found = true
		}
		return !found
	})
	return found
}

// drainYields reports whether some loop in the body checks RCNotDone —
// the drain's stop-on-backpressure obligation.
func drainYields(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return !found
		}
		ast.Inspect(loop, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == "RCNotDone" {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

func runBoundedRetry(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	c := protoContext(pass)
	ts := retryEngine(pass, c)
	for _, pf := range c.scopeFuncs(pass) {
		if !inPass(pass, pf.pkg.PkgPath) {
			continue
		}
		switch role := c.retryRole(pf.id); role {
		case "", "post":
		case "bounded":
			if !backoffShift(pf.decl.Body) {
				pass.Reportf(pf.decl.Name.Pos(),
					"retry bounded %s has no backoff shift indexed by .Attempts: "+
						"retries would hammer the NIC at a fixed virtual-time cadence",
					pf.display)
			}
		default:
			pass.Reportf(pf.decl.Name.Pos(),
				"unknown retry role %q: want bounded or post", role)
			continue
		}
		if c.creditRole(pf.id) == "drain" && !drainYields(pf.decl.Body) {
			pass.Reportf(pf.decl.Name.Pos(),
				"credit drain %s has no loop that stops on RCNotDone: it would "+
					"spin re-issuing into a closed credit window", pf.display)
		}
		fi := findFuncInfo(pass, pf.decl)
		if fi == nil {
			continue
		}
		entry := map[any]string{retryKey{}: "unguarded"}
		for _, v := range ts.Analyze(fi, entry, nil) {
			if v.Exit {
				continue
			}
			pass.Reportf(v.Pos,
				"failed descriptor re-posted with no dominating .Attempts bound on "+
					"this path: a persistently failing transaction would re-post forever")
		}
	}
	return nil
}
