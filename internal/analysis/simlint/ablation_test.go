package simlint

import (
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMutationAblation is the seeded mutation matrix that proves the
// analyzers earn their keep end-to-end: each row copies the module's Go
// sources into a scratch module, seeds one defect of the class the
// analyzer family was built to catch, and runs the real simlint binary
// there. The pristine copy must lint clean (exit 0 — every allow used),
// and every mutant must fail `make lint` (exit 1) with a finding from
// the expected analyzer.
//
// The four shardsafe rows seed the races the parallel-window kernel
// design forbids: a worker-loop store through the coordinator's shared
// sequence counter, a dropped atomic on the live-descriptor counter, a
// second outbox producer, and a direct past-window send through the
// coordinator. The next two rows automate PR 4's manual ablation on the
// shipped machine layer: deleting a single descriptor Put, and deleting
// a slab release from Layer.Close. The last three rows seed the protocol
// defects the protoflow typestate family proves absent: severing the
// credit drain from its EvCreditReturn dispatch, dropping the
// credit-flight Put so the completion callback leaves the record zeroed
// but unretired, and deleting the MaxRetries guard so the
// transaction-error handler re-posts a failing descriptor forever.

type edit struct {
	old, new string
}

type ablationRow struct {
	name      string
	file      string // module-relative file to mutate
	edits     []edit // each must apply exactly once
	appendSrc string // appended verbatim after the edits
	analyzer  string // the analyzer that must report the mutant
}

func ablationRows() []ablationRow {
	return []ablationRow{
		{
			name: "cross-shard alias from the worker loop",
			file: "internal/sim/shard.go",
			edits: []edit{{
				old: "n := sh.eng.RunUntil(horizon - 1)",
				new: "n := sh.eng.RunUntil(horizon - 1)\n\t\t\t\t*sh.eng.seqp = n",
			}},
			analyzer: "shardescape",
		},
		{
			name: "dropped atomic on the live-descriptor counter",
			file: "internal/mem/freelist.go",
			edits: []edit{
				{old: "var live atomic.Int64", new: "var live int64"},
				{old: "live.Add(1)", new: "atomic.AddInt64(&live, 1)"},
				{old: "live.Add(-1)", new: "live--"},
				{old: "live.Load()", new: "live"},
			},
			analyzer: "atomicshared",
		},
		{
			name: "second outbox producer",
			file: "internal/sim/shard.go",
			appendSrc: "\n//simlint:outbox-transfer -- mutant: duplicate producer racing Send\n" +
				"func (s *Shard) SendDup(dst int, at Time) {\n" +
				"\ts.out[dst] = append(s.out[dst], crossEvent{})\n}\n",
			analyzer: "singlewriter",
		},
		{
			name: "direct past-window send through the coordinator",
			file: "internal/sim/shard.go",
			edits: []edit{{
				old: "n := sh.eng.RunUntil(horizon - 1)",
				new: "sh.se.AtNode(0, horizon, func() {})\n\t\t\t\tn := sh.eng.RunUntil(horizon - 1)",
			}},
			analyzer: "windowsend",
		},
		{
			name: "deleted descriptor Put (PR 4 ablation, automated)",
			file: "internal/machine/ugnimachine/layer.go",
			edits: []edit{{
				old: "\t\tl.acks.Put(ack)\n",
				new: "",
			}},
			analyzer: "poolleak",
		},
		{
			name: "deleted slab release in Close (PR 4 ablation, automated)",
			file: "internal/machine/ugnimachine/layer.go",
			edits: []edit{{
				old: "\tpoolSlabs.Put(l.pools)\n",
				new: "",
			}},
			analyzer: "closechain",
		},
		{
			name: "deleted credit drain after the EvCreditReturn dispatch",
			file: "internal/machine/ugnimachine/layer.go",
			edits: []edit{{
				old: "\t\tl.drainPending(pe, ev)\n",
				new: "\t\t_ = ev\n",
			}},
			analyzer: "creditbalance",
		},
		{
			name: "deleted credit-flight Put in the return callback",
			file: "internal/ugni/gni.go",
			edits: []edit{{
				old: "\tg.creditFlights.Put(fl)\n",
				new: "\t_ = fl\n",
			}},
			analyzer: "flightlifecycle",
		},
		{
			name: "deleted MaxRetries guard on the transaction-error re-post",
			file: "internal/machine/ugnimachine/layer.go",
			edits: []edit{{
				old: "\t\tif int(d.Attempts) > l.cfg.MaxRetries {\n" +
					"\t\t\tpanic(fmt.Sprintf(\"ugnimachine: %v transaction to PE %d failed %d times\",\n" +
					"\t\t\t\td.Kind, d.Remote, d.Attempts))\n" +
					"\t\t}\n",
				new: "",
			}},
			analyzer: "boundedretry",
		},
	}
}

func TestMutationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation matrix re-lints the whole module per row")
	}
	repo, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "simlint")
	if out, err := command(repo, "go", "build", "-o", bin, "./cmd/simlint"); err != nil {
		t.Fatalf("building simlint: %v\n%s", err, out)
	}

	pristine := copyModule(t, repo)
	if out, code := runLint(t, bin, pristine); code != 0 {
		t.Fatalf("pristine copy does not lint clean (exit %d):\n%s", code, out)
	}

	for _, row := range ablationRows() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			dir := copyModule(t, repo)
			mutateFile(t, filepath.Join(dir, row.file), row.edits, row.appendSrc)
			out, code := runLint(t, bin, dir)
			if code != 1 {
				t.Fatalf("mutant exited %d, want 1 (lint failure):\n%s", code, out)
			}
			if !strings.Contains(out, "("+row.analyzer+")") {
				t.Errorf("mutant findings lack a %s report:\n%s", row.analyzer, out)
			}
		})
	}
}

// copyModule copies the module's go.mod and every .go file (tests and
// all — the lint run analyzes test variants too) into a fresh temp
// module rooted at the same relative layout.
func copyModule(t *testing.T, repo string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(repo, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") && name != "go.mod" && name != "go.sum" {
			return nil
		}
		rel, err := filepath.Rel(repo, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return dst
}

// mutateFile applies each edit exactly once and appends appendSrc.
func mutateFile(t *testing.T, path string, edits []edit, appendSrc string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, e := range edits {
		if n := strings.Count(text, e.old); n != 1 {
			t.Fatalf("edit anchor %q occurs %d times in %s, want exactly 1", e.old, n, path)
		}
		text = strings.Replace(text, e.old, e.new, 1)
	}
	text += appendSrc
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runLint runs the simlint binary over the module at dir.
func runLint(t *testing.T, bin, dir string) (string, int) {
	t.Helper()
	out, err := command(dir, bin, "./...")
	if err == nil {
		return out, 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return out, ee.ExitCode()
	}
	t.Fatalf("running simlint: %v\n%s", err, out)
	return "", -1
}

func command(dir, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}
