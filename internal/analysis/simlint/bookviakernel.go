package simlint

import (
	"go/ast"
	"strings"

	"charmgo/internal/analysis/framework"
)

// schedulers are the module-relative package roots allowed to book events
// directly: the kernel itself, the NIC engines, and the machine/scheduler
// layers that pump them.
var schedulers = []string{"internal/sim", "internal/gemini", "internal/shm",
	"internal/ugni", "internal/machine", "internal/converse"}

// kernelSurface maps each guarded internal/sim receiver type to its
// booking-verb methods and the module-relative package roots allowed to
// call them. This is the PR 1 boundary made machine-checkable: direct
// event scheduling and resource booking stay inside the kernel and the
// NIC engines; everything above (cmd/*, charm layer, examples, apps)
// must go through the gemini network facade or the machine layers.
var kernelSurface = map[string]map[string][]string{
	"Engine": {
		// Event scheduling: the kernel itself, the NIC engines, and the
		// machine/scheduler layers that pump them.
		"Schedule":    schedulers,
		"ScheduleArg": schedulers,
		"At":          schedulers,
		"AtArg":       schedulers,
		"AtNode":      schedulers,
		"AtNodeArg":   schedulers,
	},
	// The Kernel interface and the sharded engine expose the same booking
	// verbs; calls through either hit the same PR 1 boundary. Most callers
	// hold a sim.Kernel, so the interface entry is the one doing the work.
	"Kernel": {
		"Schedule":    schedulers,
		"ScheduleArg": schedulers,
		"At":          schedulers,
		"AtArg":       schedulers,
		"AtNode":      schedulers,
		"AtNodeArg":   schedulers,
	},
	"ShardedEngine": {
		"Schedule":    schedulers,
		"ScheduleArg": schedulers,
		"At":          schedulers,
		"AtArg":       schedulers,
		"AtNode":      schedulers,
		"AtNodeArg":   schedulers,
	},
	// Parallel-window shard handles: the kernel itself and the bench
	// harness's shard-scale workloads (which are the parallel mode's
	// direct consumers, like tests are for the flat engine).
	"Shard": {
		"At":    {"internal/sim", "internal/bench"},
		"AtArg": {"internal/sim", "internal/bench"},
		"Send":  {"internal/sim", "internal/bench"},
	},
	"GapResource": {
		// Gemini link booking is the heart of the model: only the kernel
		// and the gemini engines may reserve link slots.
		"Acquire": {"internal/sim", "internal/gemini"},
		"Peek":    {"internal/sim", "internal/gemini"},
	},
	"PEResource": {
		// PE occupancy is booked by the layers that model host-side work.
		"Acquire": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/converse",
			"internal/mpi"},
	},
	"NICEngine": {
		// Calls through the interface value: the transport layers own it.
		// TransferThen is the deferred-completion form the window modes
		// require for cross-shard transfers; it books the same link path,
		// so it sits behind the same boundary. (GetThen has no NICEngine
		// entry: it exists only on the gemini facade and unit engines,
		// whose receivers live outside internal/sim.)
		"Transfer": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/mpi"},
		"TransferThen": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/mpi"},
		"Get": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/mpi"},
		"Enqueue": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/mpi"},
		"EnqueueArg": {"internal/sim", "internal/gemini", "internal/shm",
			"internal/ugni", "internal/machine", "internal/mpi"},
	},
}

// simPkg is the package defining the guarded kernel types.
const simPkg = module + "/internal/sim"

// BookViaKernel forbids direct kernel booking — sim.Engine scheduling,
// sim.GapResource/sim.PEResource acquisition, raw sim.NICEngine calls —
// from packages above the NIC-engine boundary established in PR 1.
// Higher layers route through gemini.Network (or a machine layer), which
// books via the audited unitEngine path. _test.go files are exempt:
// tests may drive the kernel directly.
var BookViaKernel = &framework.Analyzer{
	Name: "bookviakernel",
	Doc: "forbid direct sim.Engine scheduling and sim resource booking outside " +
		"the kernel/NIC-engine layers; higher layers use the gemini.Network facade",
	Run: runBookViaKernel,
}

func runBookViaKernel(pass *framework.Pass) error {
	r := rel(pass.PkgPath)
	if under(r, "internal/analysis") {
		return nil
	}
	check := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvPkg, recvType := receiverOf(pass, sel)
			if recvPkg != simPkg {
				return true
			}
			allowed, guarded := kernelSurface[recvType][sel.Sel.Name]
			if !guarded {
				return true
			}
			if !under(r, allowed...) {
				pass.Reportf(sel.Pos(),
					"direct kernel booking sim.%s.%s from %s: route through the "+
						"gemini network facade or a machine layer (PR 1 boundary)",
					recvType, sel.Sel.Name, displayPkg(pass.PkgPath))
			}
			return true
		})
	}
	for _, fi := range pass.Functions() {
		if fi.Decl == nil || isTestFile(pass, fi.Pos()) {
			continue
		}
		check(fi.Decl)
	}
	for _, e := range pass.InitExprs() {
		if !strings.HasSuffix(pass.File(e.Pos()), "_test.go") {
			check(e)
		}
	}
	return nil
}

// displayPkg shortens a package path for diagnostics.
func displayPkg(pkgPath string) string {
	if pkgPath == module {
		return "the root package"
	}
	return strings.TrimPrefix(pkgPath, module+"/")
}
