package simlint

import (
	"go/ast"
	"go/types"

	"charmgo/internal/analysis/framework"
)

// HotPathAlloc keeps the per-message code allocation-free. Functions
// annotated `//simlint:hotpath` are roots; everything they reach through
// the call graph (direct calls and function values handed to the
// closure-free dispatch helpers AtArg/ScheduleArg/EnqueueArg) is hot.
// Inside a hot function the analyzer flags the constructs that allocate
// per call: function literals (closures), make/new, escaping composite
// literals (&T{...}, map and slice literals), map assignments, and
// appends that do not write back into the slice they extend. Value
// struct literals and method values are fine. Interface and stored-value
// calls are not resolved — their concrete implementations carry their
// own //simlint:hotpath annotation (DESIGN.md "Ownership rules").
//
// This is the static face of the fig9a allocs/op gate: the benchmark
// proves the steady state allocation-free, this analyzer points at the
// exact expression when a change regresses it.
var HotPathAlloc = &framework.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs (closures, make/new, escaping composite " +
		"literals, map writes, growing appends) in functions reachable from a " +
		"//simlint:hotpath root",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	for _, fi := range pass.Functions() {
		if fi.Decl == nil || isTestFile(pass, fi.Pos()) {
			continue
		}
		root, hot := pass.Prog.Hot(fi.Obj())
		if !hot {
			continue
		}
		checkHotBody(pass, fi.Decl.Body, root)
	}
	return nil
}

func checkHotBody(pass *framework.Pass, body *ast.BlockStmt, root string) {
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "%s on the hot path (reachable from %s): "+
			"pool or pre-size it off the per-message path", what, root)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocation")
			return false // its body runs elsewhere; one finding suffices
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(n, "make")
					case "new":
						report(n, "new")
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "escaping composite literal")
					// Still descend: the literal's elements may allocate too,
					// but don't double-report the literal itself.
					for _, el := range cl.Elts {
						checkHotExprTree(pass, el, report)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n, "map literal")
				case *types.Slice:
					report(n, "slice literal")
				}
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, n, report)
		}
		return true
	})
}

func checkHotExprTree(pass *framework.Pass, root ast.Expr, report func(ast.Node, string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			report(lit, "closure allocation")
			return false
		}
		return true
	})
}

func checkHotAssign(pass *framework.Pass, as *ast.AssignStmt, report func(ast.Node, string)) {
	for _, l := range as.Lhs {
		if ix, ok := l.(*ast.IndexExpr); ok {
			if t := pass.TypesInfo.Types[ix.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(ix, "map assignment")
				}
			}
		}
	}
	for i, r := range as.Rhs {
		call, ok := r.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if len(call.Args) == 0 {
			continue
		}
		// x = append(x, ...) extends in place once warmed up; appending into
		// a different destination copies and grows every call.
		if i < len(as.Lhs) && len(as.Lhs) == len(as.Rhs) && sameLValue(pass, as.Lhs[i], call.Args[0]) {
			continue
		}
		report(call, "growing append")
	}
}

// sameLValue reports structural equality of two assignable expressions:
// identifiers by object, selector chains by field object, index
// expressions and pointer derefs by their parts.
func sameLValue(pass *framework.Pass, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := pass.TypesInfo.ObjectOf(a)
		bo := pass.TypesInfo.ObjectOf(bid)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ao := pass.TypesInfo.ObjectOf(a.Sel)
		bo := pass.TypesInfo.ObjectOf(bs.Sel)
		return ao != nil && ao == bo && sameLValue(pass, a.X, bs.X)
	case *ast.IndexExpr:
		bi, ok := b.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return sameLValue(pass, a.X, bi.X) && sameLValue(pass, a.Index, bi.Index)
	case *ast.StarExpr:
		bstar, ok := b.(*ast.StarExpr)
		if !ok {
			return false
		}
		return sameLValue(pass, a.X, bstar.X)
	case *ast.ParenExpr:
		return sameLValue(pass, a.X, b)
	case *ast.BasicLit:
		bl, ok := b.(*ast.BasicLit)
		return ok && a.Value == bl.Value
	}
	return false
}
