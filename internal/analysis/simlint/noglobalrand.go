package simlint

import (
	"go/ast"
	"go/types"
	"strings"

	"charmgo/internal/analysis/framework"
)

// randConstructors are the math/rand entry points that build an explicitly
// seeded generator — the only sanctioned way to obtain randomness in
// simulation code (threaded from the experiment config, e.g. Options.Seed
// into sim.NewRNG or rand.New(rand.NewSource(seed))).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// NoGlobalRand forbids the math/rand (and math/rand/v2) package-level
// convenience functions in simulation code: they draw from a process-global,
// implicitly seeded source, so two runs of the same experiment diverge.
// Constructing a seeded *rand.Rand is allowed; so are _test.go files.
var NoGlobalRand = &framework.Analyzer{
	Name: "noglobalrand",
	Doc: "forbid math/rand top-level functions (global source) in simulation code; " +
		"thread an explicitly seeded *rand.Rand or sim.RNG from the experiment config",
	Run: runNoGlobalRand,
}

func runNoGlobalRand(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	check := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := pkgNameOf(pass, sel.X)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok { // type or constant reference, e.g. rand.Rand
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on an instantiated generator: fine
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global-source rand.%s in simulation code: use an explicitly seeded "+
					"*rand.Rand or sim.RNG threaded from the experiment config", sel.Sel.Name)
			return true
		})
	}
	for _, fi := range pass.Functions() {
		if fi.Decl == nil || isTestFile(pass, fi.Pos()) {
			continue
		}
		check(fi.Decl)
	}
	for _, e := range pass.InitExprs() {
		if !strings.HasSuffix(pass.File(e.Pos()), "_test.go") {
			check(e)
		}
	}
	return nil
}
