package simlint

import (
	"go/ast"
	"go/types"

	"charmgo/internal/analysis/framework"
)

// UseAfterRelease flags any read, write, or re-release of a pooled value
// after the Put (or //simlint:release call) that returned it to its pool,
// on any control-flow path. Pools zero on Put and hand the same memory to
// the next Get, so a stale pointer dereference corrupts an unrelated
// in-flight record — the classic recycled-descriptor bug the paper's
// pool discipline (§V.B) invites. The extract-fields-then-Put idiom
// (read everything you need into locals, release, continue with the
// locals) is the sanctioned shape and passes clean.
var UseAfterRelease = &framework.Analyzer{
	Name: "useafterrelease",
	Doc: "forbid using a pooled value after the Put/release that returned it to " +
		"its pool, including releasing it twice, on any path",
	Run: runUseAfterRelease,
}

func runUseAfterRelease(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	for _, fi := range pass.Functions() {
		if isTestFile(pass, fi.Pos()) {
			continue
		}
		e, res, cfg := solveOwnership(pass, fi)
		if res == nil {
			continue
		}
		// Replay each reached block from its fixpoint entry fact, checking
		// every node against the state *before* its own effects apply (so
		// the releasing Put itself is not a use).
		for _, blk := range cfg.Blocks {
			if !res.Reached[blk.Index] || blk == cfg.PanicExit {
				continue
			}
			f := res.In[blk.Index]
			for _, n := range blk.Nodes {
				checkReleasedUses(pass, e, f, n)
				f = e.transfer(f, n)
			}
		}
	}
	return nil
}

// checkReleasedUses reports reads of released variables within one block
// node. Plain overwrites (the variable as an assignment target) rebind it
// and are fine; a released variable as the argument of another release
// call is a double Put.
func checkReleasedUses(pass *framework.Pass, e *ownEngine, f ownFact, node ast.Node) {
	released := func(id *ast.Ident) (*types.Var, bool) {
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return nil, false
		}
		st, tracked := f[v]
		return v, tracked && st.bits&stReleased != 0 && st.bits&stOwned == 0
	}

	// Targets rebound by assignment in this node: not uses.
	rebound := make(map[*ast.Ident]bool)
	// Idents that are arguments of a release call: double-release sites.
	rereleased := make(map[*ast.Ident]bool)

	roots := granularityRoots(node)
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						rebound[id] = true
					}
				}
			case *ast.CallExpr:
				if e.classify(n) == opRelease {
					for _, a := range n.Args {
						if id, ok := a.(*ast.Ident); ok {
							rereleased[id] = true
						}
					}
				}
			}
			return true
		})
	}
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, isReleased := released(id)
			if !isReleased || rebound[id] {
				return true
			}
			if rereleased[id] {
				pass.Reportf(id.Pos(),
					"pooled value %s released twice: it was already returned to its pool", v.Name())
				return true
			}
			pass.Reportf(id.Pos(),
				"use of pooled value %s after it was released: the pool may have "+
					"recycled it into another record", v.Name())
			return true
		})
	}
}

// granularityRoots expands a block node into the subtrees that actually
// execute there, per the CFG node-granularity contract.
func granularityRoots(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.RangeStmt:
		var out []ast.Node
		for _, e := range []ast.Expr{n.X, n.Key, n.Value} {
			if e != nil {
				out = append(out, e)
			}
		}
		return out
	case *ast.CaseClause:
		var out []ast.Node
		for _, e := range n.List {
			out = append(out, e)
		}
		return out
	}
	return []ast.Node{n}
}
