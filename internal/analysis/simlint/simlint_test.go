package simlint

import (
	"path/filepath"
	"testing"

	"charmgo/internal/analysis/framework"
)

// fixtureRoot returns the overlay tree for one analyzer's fixtures.
func fixtureRoot(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoWallClock(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("nowallclock"), NoWallClock,
		"charmgo/internal/sim", "charmgo/internal/bench")
}

func TestNoGlobalRand(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("noglobalrand"), NoGlobalRand,
		"charmgo/internal/converse")
}

func TestMapOrder(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("maporder"), MapOrder,
		"charmgo/internal/demo")
}

func TestNoGoroutine(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("nogoroutine"), NoGoroutine,
		"charmgo/internal/converse", "charmgo/internal/ampi",
		"charmgo/internal/sim")
}

func TestBookViaKernel(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("bookviakernel"), BookViaKernel,
		"charmgo/internal/charm", "charmgo/internal/gemini")
}

func TestPoolLeak(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("poolleak"), PoolLeak,
		"charmgo/internal/demo")
}

func TestUseAfterRelease(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("useafterrelease"), UseAfterRelease,
		"charmgo/internal/demo")
}

func TestHotPathAlloc(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("hotpathalloc"), HotPathAlloc,
		"charmgo/internal/demo")
}

func TestCloseChain(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("closechain"), CloseChain,
		"charmgo/internal/demo")
}

func TestShardEscapeFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("shardescape"), ShardEscape,
		"charmgo/internal/sim")
}

func TestAtomicSharedFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("atomicshared"), AtomicShared,
		"charmgo/internal/sim")
}

func TestSingleWriterFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("singlewriter"), SingleWriter,
		"charmgo/internal/sim")
}

func TestWindowSendFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("windowsend"), WindowSend,
		"charmgo/internal/sim")
}

func TestCreditBalanceFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("creditbalance"), CreditBalance,
		"charmgo/internal/demo")
}

func TestFlightLifecycleFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("flightlifecycle"), FlightLifecycle,
		"charmgo/internal/demo")
}

func TestEventTotalityFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("eventtotality"), EventTotality,
		"charmgo/internal/demo")
}

func TestBoundedRetryFixture(t *testing.T) {
	framework.RunFixture(t, fixtureRoot("boundedretry"), BoundedRetry,
		"charmgo/internal/demo")
}

// TestScope pins the package-scope helpers the analyzers share.
func TestScope(t *testing.T) {
	cases := []struct {
		pkg  string
		want bool
	}{
		{"charmgo", true},
		{"charmgo/internal/sim", true},
		{"charmgo/internal/gemini", true},
		{"charmgo/internal/machine/ugnimachine", true},
		{"charmgo/internal/machine/ugnimachine_test", true},
		{"charmgo/internal/bench", false},
		{"charmgo/internal/analysis/simlint", false},
		{"charmgo/cmd/nqueens", false},
		{"charmgo/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := simulationScope(c.pkg); got != c.want {
			t.Errorf("simulationScope(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
}
