package simlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"charmgo/internal/analysis/framework"
)

// ShardEscape proves write confinement for shard workers: every store
// executed by worker-side code must land in the worker's owned region —
// the points-to closure of the goroutine's captured variables, cut at
// //simlint:shared fields and interface cells — or in storage the worker
// itself allocates. Anything else is a potential cross-shard or
// merge-barrier alias and must instead go through a function annotated
// //simlint:outbox-transfer.
//
// Precision contract: Andersen context-insensitivity collapses all
// shards into one abstract region, so the analyzer checks confinement
// (the write is explainable as shard-local), not per-instance
// separation: a write passes when at least one of its may-targets is
// owned or worker-allocated. A write whose every target lies outside the
// region — coordinator state behind a //simlint:shared cut, a global, a
// coordinator-side local, or the unknown region fed by unresolved calls
// — is reported.
var ShardEscape = &framework.Analyzer{
	Name: "shardescape",
	Doc: "writes in shard-worker code must stay within the worker's owned region; " +
		"cross-shard hand-offs go through //simlint:outbox-transfer functions",
	Run: runShardEscape,
}

func runShardEscape(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	c := shardContext(pass)
	if len(c.workerLits) == 0 {
		return nil
	}
	pkg := c.passPkg(pass)
	if pkg == nil {
		return nil
	}
	for _, body := range workerBodies(pass, c) {
		scanEscapes(pass, c, pkg, body)
	}
	return nil
}

// workerBodies returns the worker-side code of this pass's package:
// bodies of declared functions in the worker closure (minus the audited
// outbox-transfer verbs) plus shard-worker goroutine literals.
func workerBodies(pass *framework.Pass, c *shardCtx) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fid := framework.FuncID(fn)
			if fid == "" || !c.workerFuncs[fid] || c.transferFns[fid] {
				continue
			}
			out = append(out, fd.Body)
		}
	}
	for _, site := range c.workerLits {
		if site.pkg.Types == pass.Pkg {
			out = append(out, site.lit.Body)
		}
	}
	return out
}

// scanEscapes walks one worker-side body and checks every store.
func scanEscapes(pass *framework.Pass, c *shardCtx, pkg *framework.Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals run on the same goroutine unless spawned; a
			// spawned one would need its own shard-worker audit. Keep
			// scanning — their stores execute worker-side.
			return true
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok && (id.Name == "_" || n.Tok == token.DEFINE) {
					_ = i
					continue
				}
				checkStore(pass, c, pkg, l)
			}
		case *ast.IncDecStmt:
			checkStore(pass, c, pkg, n.X)
		}
		return true
	})
}

func checkStore(pass *framework.Pass, c *shardCtx, pkg *framework.Package, l ast.Expr) {
	targets := c.pt.WriteTargets(pkg, l)
	if len(targets) == 0 {
		return
	}
	var worst *framework.PObj
	for _, t := range targets {
		o := t.Obj
		switch {
		case o.Kind == framework.ObjFunc:
			// A function object in a write-target set is conflation noise
			// (code is immutable); it neither explains nor condemns the
			// store.
			continue
		case c.owned[o.ID]:
			// Explainable as a store into the shard-owned region.
			return
		case o.Kind != framework.ObjUnknown && c.workerLocal(o.Pos):
			// Storage the worker side itself allocates.
			return
		}
		if worst == nil || o.Kind == framework.ObjUnknown {
			worst = o
		}
	}
	if worst == nil {
		return
	}
	if worst.Kind == framework.ObjUnknown {
		pass.Reportf(l.Pos(),
			"shard worker may write state that escaped analysis through an unresolved call; "+
				"route cross-shard hand-offs through an //simlint:outbox-transfer function")
		return
	}
	pass.Reportf(l.Pos(),
		"shard worker writes non-owned state (%s): cross-shard and barrier hand-offs must go "+
			"through an //simlint:outbox-transfer function or a //simlint:shared field's atomic discipline",
		worst)
}
