package simlint

import (
	"sort"

	"charmgo/internal/analysis/framework"
)

// EventTotality is the whole-program match between emitted event kinds
// and the dispatch switches that consume them. Every labeled kind must
// be emitted somewhere (a handler arm for a never-emitted kind is dead
// protocol surface, usually a refactor leftover), and for every class it
// carries — except "polled", whose events are reaped synchronously —
// some dispatcher of that class must handle it, either by naming the
// constant in its body or by accounting for it in the annotation's
// extras list (the default arm that fills the dispatched envelope).
// Dually, a dispatcher may only reference kinds of its own class, and
// every const of a type that carries labeled kinds must itself be
// labeled — an unlabeled kind would silently bypass the totality check,
// which is exactly how an unhandled-event bug is born.
var EventTotality = &framework.Analyzer{
	Name: "eventtotality",
	Doc: "whole-program totality of event dispatch: every labeled kind is " +
		"emitted and handled by a dispatcher of each of its classes, every " +
		"dispatcher arm names a kind of its class, no kind escapes unlabeled",
	Grammar: "//simlint:proto event kind <class>...   (const doc: classifies the kind; \"polled\" needs no dispatcher)\n" +
		"//simlint:proto event dispatch <class> [Kind...]   (func doc: handles every kind of <class>; extras are accounted arms)",
	Run: runEventTotality,
}

func runEventTotality(pass *framework.Pass) error {
	if !simulationScope(pass.PkgPath) {
		return nil
	}
	c := protoContext(pass)

	kinds := make([]*eventKind, 0, len(c.eventConsts))
	for _, k := range c.eventConsts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].id < kinds[j].id })

	// Kind-side checks, reported by the package that declares the kind.
	for _, k := range kinds {
		if !inPass(pass, k.pkgPath) {
			continue
		}
		if len(k.emissions) == 0 {
			pass.Reportf(k.pos,
				"event kind %s is never emitted: no Event composite or .Type "+
					"assignment names it", k.name)
		}
		for _, class := range k.classes {
			if class == "polled" {
				continue
			}
			if !classHandles(c, class, k) {
				pass.Reportf(k.pos,
					"event kind %s is not handled by any %q dispatcher: an emitted "+
						"%s event would be dropped on the floor", k.name, class, k.name)
			}
		}
	}

	// Unlabeled consts of a labeled kind type bypass totality.
	for _, u := range c.unlabeled {
		if inPass(pass, u.pkgPath) {
			pass.Reportf(u.pos,
				"constant %s has an event-kind type but no //simlint:proto event "+
					"kind label: it is invisible to dispatch totality", u.name)
		}
	}

	// Dispatcher-side checks, reported by the handler's package.
	for _, d := range c.dispatchers {
		if !inPass(pass, d.fn.pkg.PkgPath) {
			continue
		}
		refs := make([]string, 0, len(d.refs))
		for id := range d.refs {
			refs = append(refs, id)
		}
		sort.Strings(refs)
		for _, id := range refs {
			k := c.eventConsts[id]
			if !kindHasClass(k, d.class) {
				pass.Reportf(d.fn.decl.Name.Pos(),
					"dispatcher %s (class %q) has an arm for %s, which does not "+
						"carry class %q", d.fn.display, d.class, k.name, d.class)
			}
		}
		extras := make([]string, 0, len(d.extras))
		for name := range d.extras {
			extras = append(extras, name)
		}
		sort.Strings(extras)
		for _, name := range extras {
			if !extraResolves(kinds, name, d.class) {
				pass.Reportf(d.fn.decl.Name.Pos(),
					"dispatcher %s accounts for kind %s, but no labeled event kind "+
						"of class %q has that name", d.fn.display, name, d.class)
			}
		}
	}
	return nil
}

// classHandles reports whether some dispatcher of the class handles the
// kind, by body reference or by accounted extra.
func classHandles(c *protoCtx, class string, k *eventKind) bool {
	for _, d := range c.dispatchers {
		if d.class != class {
			continue
		}
		if d.refs[k.id] || d.extras[k.name] {
			return true
		}
	}
	return false
}

func kindHasClass(k *eventKind, class string) bool {
	for _, c := range k.classes {
		if c == class {
			return true
		}
	}
	return false
}

// extraResolves reports whether an accounted extra names a labeled kind
// of the dispatcher's class.
func extraResolves(kinds []*eventKind, name, class string) bool {
	for _, k := range kinds {
		if k.name == name && kindHasClass(k, class) {
			return true
		}
	}
	return false
}
