package mem

import (
	"testing"
	"testing/quick"

	"charmgo/internal/sim"
)

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	if m.Malloc(1024) >= m.Malloc(1<<20) {
		t.Fatal("Malloc cost not increasing with size")
	}
	if m.Register(4096) >= m.Register(1<<20) {
		t.Fatal("Register cost not increasing with size")
	}
	if m.Memcpy(64) >= m.Memcpy(1<<20) {
		t.Fatal("Memcpy cost not increasing with size")
	}
}

func TestCostModelPages(t *testing.T) {
	m := DefaultCostModel()
	cases := []struct{ size, want int }{
		{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {-5, 0},
	}
	for _, c := range cases {
		if got := m.Pages(c.size); got != c.want {
			t.Errorf("Pages(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestRegisterDominatesForLargeBuffers(t *testing.T) {
	// The paper's premise: registration is the expensive part of the
	// unpooled large-message path.
	m := DefaultCostModel()
	if m.Register(1<<20) <= m.Malloc(1<<20) {
		t.Fatalf("Register(1MB)=%v should exceed Malloc(1MB)=%v",
			m.Register(1<<20), m.Malloc(1<<20))
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := sizeClass(c.in); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPoolReuseIsCheap(t *testing.T) {
	p := NewPool(PoolConfig{Model: DefaultCostModel()})
	capa, cost1 := p.Alloc(4096)
	if capa < 4096 {
		t.Fatalf("Alloc returned capacity %d < requested", capa)
	}
	p.Free(capa)
	_, cost2 := p.Alloc(4096)
	if cost2 != p.allocCost {
		t.Fatalf("reused alloc cost %v, want bare freelist cost %v", cost2, p.allocCost)
	}
	if cost1 != p.allocCost {
		t.Fatalf("fresh in-slab alloc cost %v, want %v (slab pre-registered)", cost1, p.allocCost)
	}
}

func TestPoolAllocMuchCheaperThanMallocRegister(t *testing.T) {
	m := DefaultCostModel()
	p := NewPool(PoolConfig{Model: m})
	_, cost := p.Alloc(64 << 10)
	direct := m.Malloc(64<<10) + m.Register(64<<10)
	if cost*10 > direct {
		t.Fatalf("pooled alloc %v not ≪ malloc+register %v", cost, direct)
	}
}

func TestPoolExpansionCharges(t *testing.T) {
	m := DefaultCostModel()
	p := NewPool(PoolConfig{Model: m, SlabSize: 1 << 16})
	var expanded bool
	for i := 0; i < 20; i++ {
		_, cost := p.Alloc(16 << 10)
		if cost > 10*p.allocCost {
			expanded = true
		}
	}
	if !expanded {
		t.Fatal("pool never charged an expansion despite slab exhaustion")
	}
	if p.Stats().Expansions < 2 {
		t.Fatalf("Expansions = %d, want >= 2", p.Stats().Expansions)
	}
}

func TestPoolOversizedAlloc(t *testing.T) {
	p := NewPool(PoolConfig{Model: DefaultCostModel(), SlabSize: 1 << 16})
	capa, cost := p.Alloc(1 << 20)
	if capa < 1<<20 {
		t.Fatalf("oversized alloc capacity %d", capa)
	}
	if cost <= p.allocCost {
		t.Fatal("oversized alloc did not charge registration")
	}
	// And it is reusable afterwards.
	p.Free(capa)
	_, cost2 := p.Alloc(1 << 20)
	if cost2 != p.allocCost {
		t.Fatalf("reuse of oversized buffer cost %v, want %v", cost2, p.allocCost)
	}
}

func TestPoolStatsBalance(t *testing.T) {
	p := NewPool(PoolConfig{Model: DefaultCostModel()})
	var caps []int
	for i := 0; i < 50; i++ {
		c, _ := p.Alloc(100 * (i + 1))
		caps = append(caps, c)
	}
	for _, c := range caps {
		p.Free(c)
	}
	st := p.Stats()
	if st.Allocs != 50 || st.Frees != 50 {
		t.Fatalf("allocs/frees = %d/%d, want 50/50", st.Allocs, st.Frees)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after balanced alloc/free, want 0", st.LiveBytes)
	}
}

func TestPoolLiveBytesNeverNegative(t *testing.T) {
	// Property: any interleaving of allocs and frees of what was allocated
	// keeps LiveBytes >= 0 and capacity >= request.
	f := func(sizes []uint16) bool {
		p := NewPool(PoolConfig{Model: DefaultCostModel()})
		var live []int
		for i, s := range sizes {
			if i%3 == 2 && len(live) > 0 {
				p.Free(live[len(live)-1])
				live = live[:len(live)-1]
				continue
			}
			c, _ := p.Alloc(int(s))
			if c < int(s) {
				return false
			}
			live = append(live, c)
			if p.Stats().LiveBytes < 0 {
				return false
			}
		}
		return p.Stats().LiveBytes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelCalibration(t *testing.T) {
	// Sanity bounds used by the experiment calibration (DESIGN.md §4).
	m := DefaultCostModel()
	reg1m := m.Register(1 << 20)
	if reg1m < 50*sim.Microsecond || reg1m > 120*sim.Microsecond {
		t.Fatalf("Register(1MB) = %v, expected tens of microseconds", reg1m)
	}
	cp64k := m.Memcpy(64 << 10)
	if cp64k < 10*sim.Microsecond || cp64k > 30*sim.Microsecond {
		t.Fatalf("Memcpy(64KB) = %v, expected 10-30us at ~4GB/s", cp64k)
	}
}
