package mem

import "sync/atomic"

// This file is the simulator-side analog of the paper's §V.B memory pool:
// where internal/mem.Pool models the *simulated* runtime's registered-buffer
// pool (charging virtual time), FreeList removes real malloc/free from the
// simulator's own hot path. Every message/descriptor struct that flows
// through the steady-state event loop — converse envelopes, uGNI CQ event
// nodes, FMA/BTE post descriptors, rendezvous-protocol records — is
// acquired from a FreeList and released at a documented ownership point
// (see DESIGN.md §2.2 "Allocation discipline").

// live counts pooled descriptors currently acquired across every FreeList
// in the process. It is the one process-global the otherwise goroutine-
// confined free lists share, so it is atomic: independent simulations may
// run concurrently (the bench harness's point workers, the sharded
// kernel's window workers), and a torn counter would fail the leak gate
// spuriously. Each FreeList itself stays single-owner — only the shared
// diagnostic total needs the atomics. The leak test asserts this returns
// to its pre-run value after every experiment drains.
var live atomic.Int64

// LiveDescriptors reports how many pooled descriptors are currently
// acquired and not yet released, process-wide. A fully drained simulation
// must bring this back to its value before the run started.
func LiveDescriptors() int64 { return live.Load() }

// FreeList is a typed free list for the simulator's own descriptor
// structs. The zero value is ready to use. Get returns a zeroed *T
// (recycled when available, freshly allocated otherwise); Put zeroes the
// record and recycles it. Not safe for concurrent use — which is the
// point: it lives inside the deterministic single-threaded simulation.
//
// Ownership vocabulary (checked by the simlint poolleak and
// useafterrelease analyzers; DESIGN.md §6 "Ownership rules"):
//
//   - acquire: Get hands the caller exclusive ownership of the record.
//   - release: Put returns ownership to the list; the caller must not
//     touch the record afterwards — the pool may recycle it into another
//     record at any time.
//   - transfer: passing the record to a call, storing it in a field, map,
//     or slice, sending it, or returning it moves ownership to the
//     recipient, which becomes responsible for the eventual Put.
//
// Every acquired record must be released or transferred on every path to
// return; poolleak flags paths that drop one, useafterrelease flags reads
// and double-Puts after release. Functions outside this package that
// acquire or release on a caller's behalf carry //simlint:acquire and
// //simlint:release doc directives so the analyzers see through them.
type FreeList[T any] struct {
	free []*T
	out  int64 // acquired minus released, for leak diagnostics
}

// Get acquires a zeroed record: the caller owns it exclusively until it
// releases it with Put or transfers it (call argument, field/map store,
// return, send).
func (f *FreeList[T]) Get() *T {
	f.out++
	live.Add(1)
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return x
	}
	//simlint:allow hotpathalloc -- pool miss path: allocates only while the free list is empty; steady state recycles (machine layers run coordinator-side; the only cross-shard cell here is the live counter, which is atomic)
	return new(T)
}

// Put releases a record back to the list, ending the caller's ownership:
// any later read through the pointer observes a recycled record. It is
// zeroed here so a stale pointer kept past release reads zeros (loudly
// wrong) rather than the next owner's fields (silently wrong), and so the
// list never pins dead payloads for the GC.
func (f *FreeList[T]) Put(x *T) {
	var zero T
	*x = zero
	f.out--
	live.Add(-1)
	f.free = append(f.free, x)
}

// Outstanding reports this list's acquired-minus-released count.
func (f *FreeList[T]) Outstanding() int64 { return f.out }
