// Package mem models host-memory costs that dominate the paper's large
// message path — allocation, registration with the NIC, and copies — and
// implements the registered memory pool of Section IV.B that eliminates
// them from the critical path.
package mem

import "charmgo/internal/sim"

// CostModel captures the virtual-time cost of host memory operations.
// Registration is the expensive one on Gemini: the NIC's page tables must
// be populated, costing a base trap plus a per-page charge.
type CostModel struct {
	MallocBase    sim.Time // fixed cost of a heap allocation
	MallocPerKB   sim.Time // additional cost per KiB allocated (zeroing, paging)
	FreeCost      sim.Time // cost of returning memory to the allocator
	RegisterBase  sim.Time // fixed cost of GNI_MemRegister
	RegisterPage  sim.Time // additional registration cost per page
	DeregisterFix sim.Time // cost of GNI_MemDeregister
	PageSize      int      // bytes per page (4 KiB on the XE6)
	MemcpyBW      float64  // bytes per nanosecond for host memcpy
	MemcpyBase    sim.Time // fixed memcpy startup cost
}

// DefaultCostModel returns constants calibrated so that the unpooled
// send path (2*(Tmalloc+Tregister), paper Eq. 1) roughly doubles large
// message latency relative to the pooled path, matching Figures 6 and 8(b).
func DefaultCostModel() CostModel {
	return CostModel{
		MallocBase:    350 * sim.Nanosecond,
		MallocPerKB:   18 * sim.Nanosecond,
		FreeCost:      200 * sim.Nanosecond,
		RegisterBase:  1100 * sim.Nanosecond,
		RegisterPage:  260 * sim.Nanosecond,
		DeregisterFix: 700 * sim.Nanosecond,
		PageSize:      4096,
		MemcpyBW:      sim.GBps(4.2),
		MemcpyBase:    60 * sim.Nanosecond,
	}
}

// Pages reports how many pages a buffer of the given size spans.
func (m CostModel) Pages(size int) int {
	if size <= 0 {
		return 0
	}
	return (size + m.PageSize - 1) / m.PageSize
}

// Malloc reports the cost of allocating size bytes from the system heap.
func (m CostModel) Malloc(size int) sim.Time {
	if size < 0 {
		size = 0
	}
	return m.MallocBase + m.MallocPerKB*sim.Time((size+1023)/1024)
}

// Free reports the cost of releasing a buffer.
func (m CostModel) Free() sim.Time { return m.FreeCost }

// Register reports the cost of registering size bytes with the NIC.
func (m CostModel) Register(size int) sim.Time {
	return m.RegisterBase + m.RegisterPage*sim.Time(m.Pages(size))
}

// Deregister reports the cost of deregistering a buffer.
func (m CostModel) Deregister() sim.Time { return m.DeregisterFix }

// Memcpy reports the cost of copying size bytes within a node.
func (m CostModel) Memcpy(size int) sim.Time {
	return m.MemcpyBase + sim.DurationOf(size, m.MemcpyBW)
}
