package mem

import (
	"fmt"
	"math/bits"

	"charmgo/internal/sim"
)

// Pool is the registered memory pool of paper Section IV.B: a per-PE
// allocator over pre-registered memory. Because the whole pool is
// registered once up front, a message allocated from it pays neither
// malloc nor GNI_MemRegister on the critical path — only a small freelist
// charge (Tmempool in the paper's cost equations).
//
// The pool uses power-of-two size buckets with freelists. When a bucket is
// empty the pool carves from its current registered slab; when the slab is
// exhausted it expands by registering another slab (the paper: "In the case
// when the memory pool overflows, it can be dynamically expanded").
type Pool struct {
	model     CostModel
	allocCost sim.Time // critical-path cost of a pooled alloc/free
	slabSize  int
	slabLeft  int
	// buckets[i] counts free buffers of size class 1<<i. Classes are
	// powers of two, so a count per log2 replaces the old
	// map[class][]freelist (whose values were never used beyond their
	// count) — bucket bookkeeping is now a single array index, no map
	// lookups or slice growth on the alloc/free path.
	buckets [64]uint32

	// Statistics.
	registeredBytes int64
	liveBytes       int64
	allocs          uint64
	frees           uint64
	expansions      uint64
	setupCost       sim.Time // accumulated off-critical-path expansion cost
}

// PoolConfig configures a Pool.
type PoolConfig struct {
	Model     CostModel
	AllocCost sim.Time // per-op freelist cost; defaults to 90ns
	SlabSize  int      // bytes registered per expansion; defaults to 8 MiB
}

// NewPool creates a pool and registers its first slab. The registration
// cost of the initial slab is recorded as setup cost (paid at startup, not
// on any message's critical path).
func NewPool(cfg PoolConfig) *Pool {
	p := &Pool{}
	InitPool(p, cfg)
	return p
}

// InitPool initializes p in place, for callers that slab-allocate their
// per-PE pools (`make([]mem.Pool, n)`) instead of paying one heap object
// per pool. Semantics are identical to NewPool.
func InitPool(p *Pool, cfg PoolConfig) {
	if cfg.AllocCost == 0 {
		cfg.AllocCost = 90 * sim.Nanosecond
	}
	if cfg.SlabSize == 0 {
		cfg.SlabSize = 8 << 20
	}
	*p = Pool{
		model:     cfg.Model,
		allocCost: cfg.AllocCost,
		slabSize:  cfg.SlabSize,
	}
	p.expand()
}

// expand registers a new slab.
func (p *Pool) expand() {
	p.registeredBytes += int64(p.slabSize)
	p.slabLeft = p.slabSize
	p.expansions++
	p.setupCost += p.model.Malloc(p.slabSize) + p.model.Register(p.slabSize)
}

// sizeClass rounds size up to the pool's bucket granularity (power of two,
// minimum 64 bytes).
func sizeClass(size int) int {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative alloc size %d", size))
	}
	c := 64
	for c < size {
		c <<= 1
	}
	return c
}

// Alloc takes a buffer of at least size bytes from the pool and returns the
// buffer's registered capacity and the critical-path cost of the operation.
// Expansion (if needed) charges the full malloc+register cost: that is the
// "overflow" case and it is deliberately expensive.
func (p *Pool) Alloc(size int) (capacity int, cost sim.Time) {
	class := sizeClass(size)
	p.allocs++
	p.liveBytes += int64(class)
	cost = p.allocCost
	if i := bits.TrailingZeros(uint(class)); p.buckets[i] > 0 {
		p.buckets[i]--
		return class, cost
	}
	if class > p.slabSize {
		// Oversized request: registered on demand, charged in full.
		p.registeredBytes += int64(class)
		p.expansions++
		return class, cost + p.model.Malloc(class) + p.model.Register(class)
	}
	if p.slabLeft < class {
		p.expand()
		cost += p.model.Malloc(p.slabSize) + p.model.Register(p.slabSize)
	}
	p.slabLeft -= class
	return class, cost
}

// Free returns a buffer of the given capacity (as reported by Alloc) to the
// pool's freelist and returns the critical-path cost.
func (p *Pool) Free(capacity int) sim.Time {
	class := sizeClass(capacity)
	p.frees++
	p.liveBytes -= int64(class)
	p.buckets[bits.TrailingZeros(uint(class))]++
	return p.allocCost
}

// Stats reports pool counters.
type Stats struct {
	RegisteredBytes int64
	LiveBytes       int64
	Allocs, Frees   uint64
	Expansions      uint64
	SetupCost       sim.Time
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		RegisteredBytes: p.registeredBytes,
		LiveBytes:       p.liveBytes,
		Allocs:          p.allocs,
		Frees:           p.frees,
		Expansions:      p.expansions,
		SetupCost:       p.setupCost,
	}
}
