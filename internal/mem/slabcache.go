package mem

import "sync"

// SlabCache recycles the per-PE construction slabs a simulated machine is
// built from (CQ arrays, per-PE pools, scheduler arrays, link resources).
// Experiment suites construct and drop one full machine per data point, so
// without recycling these slabs dominate allocated bytes — and therefore GC
// pacing — even after the per-message hot path is allocation-free (DESIGN.md
// §2.2). A cache instance is package-global at each construction site:
// Get hands out a zeroed slice of the requested length (reusing any retained
// slab with sufficient capacity), Put returns a slab whose owner is being
// torn down via the Close chain.
//
// Unlike FreeList, which is touched only inside a machine's serialized
// execution region, a SlabCache is shared across machines and may be hit
// from concurrent constructions (e.g. parallel tests), so it carries a
// mutex; construction is off every message's critical path, so the lock is
// free in practice.
//
// Slabs are zeroed on Get, not on Put, so reuse is behaviorally identical
// to a fresh make — a stale field can never leak into the next machine and
// double-run determinism is preserved by construction.
//
// Ownership vocabulary (checked by the simlint closechain analyzer;
// DESIGN.md §6 "Ownership rules"): Get acquires a slab for the machine
// under construction, which stores it in a field; Put releases it when
// that machine is torn down. Because slabs live as long as their owner,
// the release site is the owner's Close (or a function reachable from
// it) — closechain verifies that every field assigned from a SlabCache
// acquire is Put on the owner's Close chain. Wrappers that acquire or
// release slabs for another package carry //simlint:acquire and
// //simlint:release doc directives (e.g. ugni.GetCQSlab/PutCQSlab).
type SlabCache[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// slabCacheMax bounds retained slabs per cache; beyond it Put drops the
// slab for the GC. Experiment suites alternate among a handful of machine
// shapes, so a small bound captures all reuse.
const slabCacheMax = 16

// Get acquires a zeroed slice of length n, reusing a retained slab when
// one with sufficient capacity exists. The slab belongs to the caller (in
// practice: the machine storing it in a field) until released with Put.
func (c *SlabCache[T]) Get(n int) []T {
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	for i := len(c.free) - 1; i >= 0; i-- {
		if s := c.free[i]; cap(s) >= n {
			last := len(c.free) - 1
			c.free[i] = c.free[last]
			c.free[last] = nil
			c.free = c.free[:last]
			c.mu.Unlock()
			s = s[:n]
			clear(s)
			return s
		}
	}
	c.mu.Unlock()
	return make([]T, n)
}

// Put releases s for a later Get, normally from the owning machine's
// Close. The caller must not touch s afterwards.
func (c *SlabCache[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	c.mu.Lock()
	if len(c.free) < slabCacheMax {
		c.free = append(c.free, s[:0])
	}
	c.mu.Unlock()
}
