package stats

import (
	"fmt"

	"charmgo/internal/sim"
)

// KernelTable renders a kernel-statistics snapshot as a harness table: the
// global counters, then the top-n resources by booked time. It is how the
// harness prints the kernel's single source of truth (sim.Probe) instead of
// each layer keeping private tallies.
func KernelTable(ks *sim.KernelStats, top int) *Table {
	t := NewTable("simulation kernel", "resource", "busy", "acquires")
	t.Note = fmt.Sprintf("events=%d bookings=%d booked=%v peak-pending=%d",
		ks.Events, ks.Bookings, ks.BookedTime, ks.PeakPending)
	// Fault counts appear only when the run actually saw faults, so
	// fault-free renderings stay byte-identical to the pre-fault-model ones.
	if ks.FaultTotal() > 0 {
		t.Note += "\nfaults:"
		for k := sim.FaultKind(0); k < sim.NumFaultKinds; k++ {
			if n := ks.Faults[k]; n > 0 {
				t.Note += fmt.Sprintf(" %s=%d", k, n)
			}
		}
	}
	for _, r := range ks.TopResources(top) {
		t.Add(r.Name, r.Busy.String(), r.Acquires)
	}
	return t
}
