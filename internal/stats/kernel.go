package stats

import (
	"fmt"

	"charmgo/internal/sim"
)

// KernelTable renders a kernel-statistics snapshot as a harness table: the
// global counters, then the top-n resources by booked time. It is how the
// harness prints the kernel's single source of truth (sim.Probe) instead of
// each layer keeping private tallies.
func KernelTable(ks *sim.KernelStats, top int) *Table {
	t := NewTable("simulation kernel", "resource", "busy", "acquires")
	t.Note = fmt.Sprintf("events=%d bookings=%d booked=%v peak-pending=%d",
		ks.Events, ks.Bookings, ks.BookedTime, ks.PeakPending)
	for _, r := range ks.TopResources(top) {
		t.Add(r.Name, r.Busy.String(), r.Acquires)
	}
	return t
}
