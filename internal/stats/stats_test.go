package stats

import (
	"strings"
	"testing"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("mean/min/max = %v/%v/%v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Fig X", "size", "a(us)", "b(us)")
	tab.Add("32", 1.234, 5678.9)
	tab.Add("1K", 10.5, 0.0)
	out := tab.String()
	if !strings.Contains(out, "Fig X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.234") || !strings.Contains(out, "5679") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		32:      "32",
		1024:    "1K",
		4096:    "4K",
		1 << 20: "1M",
		4 << 20: "4M",
		1500:    "1500",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
