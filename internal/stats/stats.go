// Package stats holds the small numeric and tabular helpers the experiment
// harness uses to print paper-style series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SortedKeys returns the keys of a string-keyed map in ascending order.
// Ranging over a Go map is deliberately randomized per iteration, so any
// map that reaches rendered output (layer Stats(), counter tables) must be
// walked through this helper to keep runs bit-identical.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest value (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank on
// a copy of xs; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}

// Table is an aligned text table with a title, printed by the harness in
// place of the paper's plots.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat prints with sensible precision for latency/bandwidth values.
func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SizeLabel formats a byte count the way the paper's x-axes do (32, 1K, 4M).
func SizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}
