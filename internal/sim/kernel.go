package sim

// Kernel is the scheduling surface the machine stack builds on: everything
// an Engine offers plus node-routed scheduling (AtNode/AtNodeArg), so the
// same gemini/uGNI/machine/converse layers run unchanged on the flat
// Engine or on a partitioned ShardedEngine. Layers that know which
// simulated node a callback concerns should schedule through the node
// forms; the flat engine ignores the hint and a sharded kernel uses it to
// book the event into the owning shard.
type Kernel interface {
	// Now reports the current virtual time.
	Now() Time
	// Fired reports how many events have executed so far.
	Fired() uint64
	// Pending reports the number of scheduled, uncancelled events.
	Pending() int

	// Schedule runs fn after delay units of virtual time.
	Schedule(delay Time, fn func()) *Event
	// ScheduleArg is the closure-free Schedule form.
	ScheduleArg(delay Time, fn func(any), arg any) *Event
	// At runs fn at absolute virtual time t.
	At(t Time, fn func()) *Event
	// AtArg is the closure-free At form.
	AtArg(t Time, fn func(any), arg any) *Event
	// AtNode is At with a node-routing hint.
	AtNode(node int, t Time, fn func()) *Event
	// AtNodeArg is AtArg with a node-routing hint.
	AtNodeArg(node int, t Time, fn func(any), arg any) *Event

	// Step fires the single next event; false when none remain.
	Step() bool
	// Run fires events until none remain and returns the number fired.
	Run() uint64
	// RunUntil fires events with timestamps <= deadline, then advances the
	// clock to the deadline.
	RunUntil(deadline Time) uint64
	// RunFor is RunUntil(Now()+d).
	RunFor(d Time) uint64

	// SetProbe installs p to observe every fired event.
	SetProbe(p Probe)
	// Probe reports the installed probe, if any.
	Probe() Probe
}

var (
	_ Kernel = (*Engine)(nil)
	_ Kernel = (*ShardedEngine)(nil)
)
