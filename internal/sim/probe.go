package sim

import "sort"

// Probe observes kernel activity: every fired event and every resource
// booking across the whole machine flows through one installed probe, so
// higher layers (trace, stats) consume a single source of truth instead
// of ad-hoc counters. A probe is zero-cost when disabled — each call site
// is behind a nil check on a predictable branch — and must not mutate
// simulation state, so enabling one never changes virtual-time results.
type Probe interface {
	// EventFired reports one executed event: the clock value it advanced
	// the engine to and the number of events still pending.
	EventFired(now Time, pending int)
	// Booking reports one resource booking: the requested ready time and
	// the interval actually granted.
	Booking(r Booked, at, start, end Time)
	// FaultNoted reports one fault-model observation: an injected
	// perturbation (link flap, credit squeeze, transaction error, CQ
	// back-pressure) or a recovery action it provoked (SMSG NOT_DONE,
	// retransmit, CQ overrun). Fault-free runs never call it.
	FaultNoted(kind FaultKind, now Time)
}

// FaultKind classifies fault-model observations flowing through a Probe.
type FaultKind uint8

const (
	// FaultSmsgNotDone: an SMSG send was refused with RC_NOT_DONE because
	// the destination mailbox's credit window was exhausted.
	FaultSmsgNotDone FaultKind = iota
	// FaultRetransmit: a machine layer re-posted a transaction after an
	// EvError completion.
	FaultRetransmit
	// FaultCqOverrun: a completion queue exceeded its finite depth and
	// raised the overrun flag.
	FaultCqOverrun
	// FaultTxError: an armed one-shot transaction error fired on an
	// FMA/BTE post.
	FaultTxError
	// FaultLinkFlap: a torus link was booked out for a transient outage
	// window.
	FaultLinkFlap
	// FaultCreditSqueeze: a connection's SMSG credit window was
	// temporarily narrowed.
	FaultCreditSqueeze
	// FaultCqBackPressure: a CQ entered a suspension (back-pressure)
	// window.
	FaultCqBackPressure

	// Resilience-tier observations (DESIGN.md §7 "Node failure and
	// recovery"). New kinds append here so the PR 5 counter indices —
	// and with them every recorded faulted golden — stay stable.

	// FaultNodeKill: a node's schedulers fail-stopped (rank death).
	FaultNodeKill
	// FaultPartition: a torus cut took a link group down for a window.
	FaultPartition
	// FaultHeartbeatMiss: a replica monitor saw its partner's heartbeat
	// age past the detection threshold.
	FaultHeartbeatMiss
	// FaultFailover: a team declared its dead member failed over to the
	// surviving replica.
	FaultFailover
	// FaultReroute: a message addressed to a dead PE was redirected to
	// its surviving replica instead of dropped.
	FaultReroute
	// FaultCheckpoint: a coordinated in-memory checkpoint was taken at
	// quiescence.
	FaultCheckpoint
	// FaultRollback: a run rolled back to its last checkpoint and began
	// replay.
	FaultRollback

	// NumFaultKinds sizes dense per-kind counter arrays.
	NumFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSmsgNotDone:
		return "smsg-not-done"
	case FaultRetransmit:
		return "retransmit"
	case FaultCqOverrun:
		return "cq-overrun"
	case FaultTxError:
		return "tx-error"
	case FaultLinkFlap:
		return "link-flap"
	case FaultCreditSqueeze:
		return "credit-squeeze"
	case FaultCqBackPressure:
		return "cq-backpressure"
	case FaultNodeKill:
		return "node-kill"
	case FaultPartition:
		return "partition"
	case FaultHeartbeatMiss:
		return "heartbeat-miss"
	case FaultFailover:
		return "failover"
	case FaultReroute:
		return "reroute"
	case FaultCheckpoint:
		return "checkpoint"
	case FaultRollback:
		return "rollback"
	}
	return "fault?"
}

// Booked is the read-only view of a resource a Probe receives.
type Booked interface {
	Name() string
	BusyTotal() Time
	Acquires() uint64
}

// Probes fans a probe stream out to several consumers.
func Probes(ps ...Probe) Probe { return multiProbe(ps) }

type multiProbe []Probe

func (m multiProbe) EventFired(now Time, pending int) {
	for _, p := range m {
		p.EventFired(now, pending)
	}
}

func (m multiProbe) Booking(r Booked, at, start, end Time) {
	for _, p := range m {
		p.Booking(r, at, start, end)
	}
}

func (m multiProbe) FaultNoted(kind FaultKind, now Time) {
	for _, p := range m {
		p.FaultNoted(kind, now)
	}
}

// KernelStats is the stock probe: cheap global counters plus per-resource
// busy totals. It answers "how much simulated work did this run book, and
// where" without any layer keeping its own tallies.
type KernelStats struct {
	Events      uint64                // events fired
	Bookings    uint64                // resource acquisitions observed
	BookedTime  Time                  // sum of granted interval lengths
	PeakPending int                   // high-water mark of the event queue
	Faults      [NumFaultKinds]uint64 // fault-model observations by kind
	byRes       map[Booked]Time
}

// NewKernelStats returns an empty collector ready to install as a Probe.
func NewKernelStats() *KernelStats {
	return &KernelStats{byRes: make(map[Booked]Time)}
}

func (k *KernelStats) EventFired(now Time, pending int) {
	k.Events++
	if pending > k.PeakPending {
		k.PeakPending = pending
	}
}

func (k *KernelStats) Booking(r Booked, at, start, end Time) {
	k.Bookings++
	k.BookedTime += end - start
	k.byRes[r] += end - start
}

func (k *KernelStats) FaultNoted(kind FaultKind, now Time) {
	k.Faults[kind]++
}

// FaultTotal sums fault-model observations across all kinds; zero in a
// fault-free run.
func (k *KernelStats) FaultTotal() uint64 {
	var n uint64
	for _, c := range k.Faults {
		n += c
	}
	return n
}

// ResourceUsage is one row of a utilization snapshot.
type ResourceUsage struct {
	Name     string
	Busy     Time
	Acquires uint64
}

// TopResources returns up to n resources ordered by observed busy time
// (descending, ties by name for determinism).
func (k *KernelStats) TopResources(n int) []ResourceUsage {
	rows := make([]ResourceUsage, 0, len(k.byRes))
	for r, busy := range k.byRes {
		rows = append(rows, ResourceUsage{Name: r.Name(), Busy: busy, Acquires: r.Acquires()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Busy != rows[j].Busy {
			return rows[i].Busy > rows[j].Busy
		}
		return rows[i].Name < rows[j].Name
	})
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}
