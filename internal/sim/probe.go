package sim

import "sort"

// Probe observes kernel activity: every fired event and every resource
// booking across the whole machine flows through one installed probe, so
// higher layers (trace, stats) consume a single source of truth instead
// of ad-hoc counters. A probe is zero-cost when disabled — each call site
// is behind a nil check on a predictable branch — and must not mutate
// simulation state, so enabling one never changes virtual-time results.
type Probe interface {
	// EventFired reports one executed event: the clock value it advanced
	// the engine to and the number of events still pending.
	EventFired(now Time, pending int)
	// Booking reports one resource booking: the requested ready time and
	// the interval actually granted.
	Booking(r Booked, at, start, end Time)
}

// Booked is the read-only view of a resource a Probe receives.
type Booked interface {
	Name() string
	BusyTotal() Time
	Acquires() uint64
}

// Probes fans a probe stream out to several consumers.
func Probes(ps ...Probe) Probe { return multiProbe(ps) }

type multiProbe []Probe

func (m multiProbe) EventFired(now Time, pending int) {
	for _, p := range m {
		p.EventFired(now, pending)
	}
}

func (m multiProbe) Booking(r Booked, at, start, end Time) {
	for _, p := range m {
		p.Booking(r, at, start, end)
	}
}

// KernelStats is the stock probe: cheap global counters plus per-resource
// busy totals. It answers "how much simulated work did this run book, and
// where" without any layer keeping its own tallies.
type KernelStats struct {
	Events      uint64 // events fired
	Bookings    uint64 // resource acquisitions observed
	BookedTime  Time   // sum of granted interval lengths
	PeakPending int    // high-water mark of the event queue
	byRes       map[Booked]Time
}

// NewKernelStats returns an empty collector ready to install as a Probe.
func NewKernelStats() *KernelStats {
	return &KernelStats{byRes: make(map[Booked]Time)}
}

func (k *KernelStats) EventFired(now Time, pending int) {
	k.Events++
	if pending > k.PeakPending {
		k.PeakPending = pending
	}
}

func (k *KernelStats) Booking(r Booked, at, start, end Time) {
	k.Bookings++
	k.BookedTime += end - start
	k.byRes[r] += end - start
}

// ResourceUsage is one row of a utilization snapshot.
type ResourceUsage struct {
	Name     string
	Busy     Time
	Acquires uint64
}

// TopResources returns up to n resources ordered by observed busy time
// (descending, ties by name for determinism).
func (k *KernelStats) TopResources(n int) []ResourceUsage {
	rows := make([]ResourceUsage, 0, len(k.byRes))
	for r, busy := range k.byRes {
		rows = append(rows, ResourceUsage{Name: r.Name(), Busy: busy, Acquires: r.Acquires()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Busy != rows[j].Busy {
			return rows[i].Busy > rows[j].Busy
		}
		return rows[i].Name < rows[j].Name
	})
	if n < len(rows) {
		rows = rows[:n]
	}
	return rows
}
