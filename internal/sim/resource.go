package sim

import "sort"

// Resource models a serially reusable piece of hardware. Two booking
// disciplines exist:
//
//   - busy-until (NewResource): requests queue strictly FIFO behind the
//     last booking. This is right for PE CPUs, whose bookings are issued
//     in execution order by the scheduler and progress engine.
//
//   - gap-filling (NewGapResource): bookings are kept as a sorted set of
//     disjoint busy intervals and a new request fills the earliest gap at
//     or after its ready time. This is right for shared network hardware
//     (NIC engines, torus links), where posts arrive in event order, not
//     ready order: a transfer whose sender's PE-local clock ran far ahead
//     must not block an independent, earlier-ready transfer posted a
//     moment later.
type Resource struct {
	name      string
	gapFill   bool
	busyUntil Time   // busy-until mode state
	iv        []ival // gap-filling mode state: sorted, disjoint intervals
	busyTotal Time
	acquires  uint64

	// Clock, when set on a gap-filling resource, lets it prune intervals
	// ending before Clock() (no future Acquire may ask for time before the
	// engine's now).
	Clock func() Time
}

type ival struct{ s, e Time }

// maxIntervals bounds memory when no Clock is available: beyond it the
// oldest interval is dropped (it is almost always in the dead past).
const maxIntervals = 4096

// NewResource returns an idle FIFO (busy-until) resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// NewGapResource returns an idle gap-filling resource.
func NewGapResource(name string) *Resource {
	return &Resource{name: name, gapFill: true}
}

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire books the resource for dur units starting no earlier than at and
// returns the booked interval [start, end).
func (r *Resource) Acquire(at, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.acquires++
	r.busyTotal += dur
	if !r.gapFill {
		start = at
		if r.busyUntil > start {
			start = r.busyUntil
		}
		end = start + dur
		r.busyUntil = end
		return start, end
	}

	r.prune()
	pos := at
	i := sort.Search(len(r.iv), func(i int) bool { return r.iv[i].e > at })
	for ; i < len(r.iv); i++ {
		if r.iv[i].s-pos >= dur {
			break // the gap before interval i fits
		}
		if r.iv[i].e > pos {
			pos = r.iv[i].e
		}
	}
	start, end = pos, pos+dur
	if dur > 0 {
		r.insert(start, end)
	}
	return start, end
}

// insert adds [s, e) at its sorted position, merging touching neighbours.
func (r *Resource) insert(s, e Time) {
	i := sort.Search(len(r.iv), func(i int) bool { return r.iv[i].s >= s })
	if i > 0 && r.iv[i-1].e == s {
		r.iv[i-1].e = e
		if i < len(r.iv) && r.iv[i].s == e {
			r.iv[i-1].e = r.iv[i].e
			r.iv = append(r.iv[:i], r.iv[i+1:]...)
		}
		return
	}
	if i < len(r.iv) && r.iv[i].s == e {
		r.iv[i].s = s
		return
	}
	r.iv = append(r.iv, ival{})
	copy(r.iv[i+1:], r.iv[i:])
	r.iv[i] = ival{s, e}
}

// prune drops intervals wholly in the dead past.
func (r *Resource) prune() {
	if r.Clock != nil {
		now := r.Clock()
		n := 0
		for n < len(r.iv) && r.iv[n].e <= now {
			n++
		}
		if n > 0 {
			r.iv = r.iv[n:]
		}
		return
	}
	if len(r.iv) > maxIntervals {
		r.iv = r.iv[len(r.iv)-maxIntervals:]
	}
}

// FreeAt reports the time after which the resource is idle forever given
// current bookings (busy-until: the queue tail; gap-filling: the end of
// the last interval).
func (r *Resource) FreeAt() Time {
	if !r.gapFill {
		return r.busyUntil
	}
	if len(r.iv) == 0 {
		return 0
	}
	return r.iv[len(r.iv)-1].e
}

// BusyTotal reports the cumulative booked time.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Acquires reports how many bookings have been made.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Utilization reports busyTotal / window, clamped to [0, 1]; it is a
// convenience for link-load reporting.
func (r *Resource) Utilization(window Time) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to idle and clears statistics.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.iv = r.iv[:0]
	r.busyTotal = 0
	r.acquires = 0
}
