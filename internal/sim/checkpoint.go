package sim

import "fmt"

// KernelCheckpoint is a coordinated in-memory snapshot of a kernel taken
// at communication quiescence (DESIGN.md §7 "Node failure and recovery").
// Because a checkpoint is only legal when no events are pending, the
// entire kernel state worth saving collapses to the clock and the
// scheduling-sequence counter: restoring them onto a *fresh* kernel and
// replaying the same workload reproduces the original run bit-identically
// — sequence numbers continue where they left off, so (time, sequence)
// tie-breaks resolve exactly as they would have in an unbroken run.
//
// The snapshot is plain data: serializable, comparable with ==, and
// shard-count agnostic (a checkpoint taken at one shard count restores
// onto any other, because quiescence leaves nothing shard-resident).
type KernelCheckpoint struct {
	// Now is the virtual clock at the checkpoint.
	Now Time
	// LastAt is the timestamp of the most recently fired event.
	LastAt Time
	// Seq is the next scheduling sequence number.
	Seq uint64
	// Fired is the cumulative count of executed events.
	Fired uint64
}

// Advanced returns a copy of the checkpoint with the clock warped forward
// to at — the rollback runner's way of pricing detection delay and
// restart cost into the recovered timeline while keeping virtual time
// monotone. Warping backward is refused: replaying into the past would
// break the single-timeline recovery-latency accounting.
func (ck KernelCheckpoint) Advanced(at Time) KernelCheckpoint {
	if at < ck.Now {
		panic(fmt.Sprintf("sim: KernelCheckpoint.Advanced(%v) before checkpoint time %v", at, ck.Now))
	}
	ck.Now = at
	ck.LastAt = at
	return ck
}

// Checkpointer is the snapshot/restore surface of a kernel. Both the flat
// Engine and the ShardedEngine implement it; both enforce the coordination
// rule — snapshot and restore are only legal at quiescence (Pending() ==
// 0), which is what makes the checkpoint this small and the restore this
// cheap.
type Checkpointer interface {
	// Checkpoint snapshots the kernel. It fails unless the kernel is
	// quiescent.
	Checkpoint() (KernelCheckpoint, error)
	// Restore warps a quiescent kernel onto the checkpoint's clock and
	// sequence counter. The clock may only move forward.
	Restore(ck KernelCheckpoint) error
}

var (
	_ Checkpointer = (*Engine)(nil)
	_ Checkpointer = (*ShardedEngine)(nil)
)

// Checkpoint implements Checkpointer.
func (e *Engine) Checkpoint() (KernelCheckpoint, error) {
	if e.live != 0 {
		return KernelCheckpoint{}, fmt.Errorf("sim: checkpoint with %d events pending", e.live)
	}
	return KernelCheckpoint{Now: e.now, LastAt: e.lastAt, Seq: e.seq, Fired: e.fired}, nil
}

// Restore implements Checkpointer.
func (e *Engine) Restore(ck KernelCheckpoint) error {
	if e.live != 0 {
		return fmt.Errorf("sim: restore with %d events pending", e.live)
	}
	if ck.Now < e.now {
		return fmt.Errorf("sim: restore would rewind clock from %v to %v", e.now, ck.Now)
	}
	e.now = ck.Now
	e.lastAt = ck.LastAt
	e.seq = ck.Seq
	e.fired = ck.Fired
	return nil
}

// Checkpoint implements Checkpointer. In lockstep mode the shared counter
// is the one that matters; per-shard counters (window modes) are kept
// uniform by Restore, so one global Seq describes either kind of kernel.
func (se *ShardedEngine) Checkpoint() (KernelCheckpoint, error) {
	if n := se.Pending(); n != 0 {
		return KernelCheckpoint{}, fmt.Errorf("sim: checkpoint with %d events pending", n)
	}
	ck := KernelCheckpoint{Now: se.now, LastAt: se.now, Seq: se.seq, Fired: se.Fired()}
	if se.parallel {
		// Window modes draw from per-shard counters; the largest is the
		// safe continuation point for every shard.
		for _, sh := range se.shards {
			if sh.seq > ck.Seq {
				ck.Seq = sh.seq
			}
			if sh.lastAt > ck.LastAt {
				ck.LastAt = sh.lastAt
			}
		}
	}
	return ck, nil
}

// Restore implements Checkpointer: the global clock, the shared lockstep
// counter, and every shard's clock and counter warp to the checkpoint
// uniformly. Uniform per-shard state is what keeps a restored lockstep
// kernel bit-identical to a restored flat kernel at every shard count —
// the same induction that proves clean-run invariance applies from the
// warped initial state.
func (se *ShardedEngine) Restore(ck KernelCheckpoint) error {
	if n := se.Pending(); n != 0 {
		return fmt.Errorf("sim: restore with %d events pending", n)
	}
	if ck.Now < se.now {
		return fmt.Errorf("sim: restore would rewind clock from %v to %v", se.now, ck.Now)
	}
	se.now = ck.Now
	se.seq = ck.Seq
	for i, sh := range se.shards {
		sh.now = ck.Now
		sh.lastAt = ck.LastAt
		sh.seq = ck.Seq
		if i == 0 {
			sh.fired = ck.Fired
		} else {
			sh.fired = 0
		}
	}
	return nil
}
