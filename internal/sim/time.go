// Package sim provides the discrete-event simulation engine that underpins
// the simulated Gemini interconnect and the message-driven runtime built on
// top of it. All time in the simulator is virtual: a single deterministic
// event loop advances a nanosecond-resolution clock, and model components
// charge time against it rather than sleeping.
package sim

import "fmt"

// Time is a point in (or a span of) virtual time, in nanoseconds.
//
// Virtual time is what every experiment in this repository reports: the
// latencies, bandwidths and step times printed by the benchmark harness are
// differences of sim.Time values, directly comparable to the wall-clock
// microseconds in the paper's plots.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an adaptive unit, e.g. "1.25us" or "3.4ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// DurationOf converts a byte count and a bandwidth in bytes per nanosecond
// into the virtual time it takes to move that many bytes.
func DurationOf(bytes int, bytesPerNS float64) Time {
	if bytes <= 0 || bytesPerNS <= 0 {
		return 0
	}
	return Time(float64(bytes) / bytesPerNS)
}

// GBps converts a bandwidth expressed in gigabytes per second into the
// bytes-per-nanosecond unit the cost models use (1 GB/s == 1 byte/ns).
func GBps(g float64) float64 { return g }
