package sim

import "strconv"

// Name is a deferred diagnostic label. Machine construction creates
// thousands of resources and queues per simulated job, and eagerly
// formatting "node17.fma"-style labels was a measurable share of setup
// cost; Name keeps the parts and renders only when a human asks.
type Name struct {
	pre, post string
	idx       int32
	indexed   bool
}

// Lit names an object with a fixed string.
func Lit(s string) Name { return Name{pre: s} }

// Indexed names an object "<pre><idx><post>", rendered lazily.
func Indexed(pre string, idx int, post string) Name {
	return Name{pre: pre, post: post, idx: int32(idx), indexed: true}
}

// String renders the label.
func (n Name) String() string {
	if !n.indexed {
		return n.pre
	}
	return n.pre + strconv.Itoa(int(n.idx)) + n.post
}
