package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(12)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12 (clock advances to deadline)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := NewRNG(42)
		var stamps []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			stamps = append(stamps, e.Now())
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Time(rng.Intn(100))
				e.Schedule(d, func() { spawn(depth - 1) })
			}
		}
		e.Schedule(0, func() { spawn(4) })
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("link")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%v,%v), want [0,10)", s1, e1)
	}
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("overlapping acquire = [%v,%v), want [10,20)", s2, e2)
	}
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("idle-gap acquire = [%v,%v), want [100,105)", s3, e3)
	}
	if r.BusyTotal() != 25 {
		t.Fatalf("BusyTotal = %v, want 25", r.BusyTotal())
	}
	if r.Acquires() != 3 {
		t.Fatalf("Acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceNeverOverlaps(t *testing.T) {
	// Property: for any sequence of (at, dur) requests, booked intervals
	// never overlap and starts are monotonically non-decreasing.
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewResource("x")
		lastEnd := Time(0)
		for _, q := range reqs {
			s, e := r.Acquire(Time(q.At), Time(q.Dur))
			if s < lastEnd {
				return false
			}
			if e < s {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2500000, "2.5ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	if d := DurationOf(1000, 1.0); d != 1000 {
		t.Fatalf("DurationOf(1000, 1 B/ns) = %v, want 1000ns", d)
	}
	if d := DurationOf(0, 5); d != 0 {
		t.Fatalf("DurationOf(0, _) = %v, want 0", d)
	}
	if d := DurationOf(100, 0); d != 0 {
		t.Fatalf("DurationOf(_, 0) = %v, want 0", d)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of range", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestMixIsDeterministicAndSpreads(t *testing.T) {
	if Mix(1) != Mix(1) {
		t.Fatal("Mix not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Mix(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Mix collided on small inputs: %d unique of 1000", len(seen))
	}
}

func TestGapResourceFillsHoles(t *testing.T) {
	r := NewGapResource("link")
	// A far-future booking must not block an earlier-ready request.
	s1, e1 := r.Acquire(1000, 50)
	if s1 != 1000 || e1 != 1050 {
		t.Fatalf("future booking = [%v,%v)", s1, e1)
	}
	s2, e2 := r.Acquire(0, 100)
	if s2 != 0 || e2 != 100 {
		t.Fatalf("gap-fill booking = [%v,%v), want [0,100)", s2, e2)
	}
	// A request that does not fit before 1000 goes after 1050.
	s3, _ := r.Acquire(950, 100)
	if s3 != 1050 {
		t.Fatalf("non-fitting booking starts at %v, want 1050", s3)
	}
}

func TestGapResourceExactFit(t *testing.T) {
	r := NewGapResource("x")
	r.Acquire(0, 10)
	r.Acquire(20, 10)
	s, e := r.Acquire(5, 10) // exactly fits [10,20)
	if s != 10 || e != 20 {
		t.Fatalf("exact-fit booking = [%v,%v), want [10,20)", s, e)
	}
	// Everything merged into one interval now: next booking at 30.
	s2, _ := r.Acquire(0, 1)
	if s2 != 30 {
		t.Fatalf("merged booking starts at %v, want 30", s2)
	}
}

func TestGapResourceNeverOverlaps(t *testing.T) {
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewGapResource("x")
		type iv struct{ s, e Time }
		var booked []iv
		for _, q := range reqs {
			if q.Dur == 0 {
				continue
			}
			s, e := r.Acquire(Time(q.At), Time(q.Dur))
			if s < Time(q.At) || e != s+Time(q.Dur) {
				return false
			}
			for _, b := range booked {
				if s < b.e && b.s < e {
					return false // overlap
				}
			}
			booked = append(booked, iv{s, e})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGapResourcePruneWithClock(t *testing.T) {
	var now Time
	r := NewGapResource("x")
	r.Clock = func() Time { return now }
	for i := 0; i < 100; i++ {
		r.Acquire(Time(i*10), 5)
	}
	now = 2000
	r.Acquire(2000, 5) // triggers prune
	if len(r.iv) > 2 {
		t.Fatalf("prune left %d intervals", len(r.iv))
	}
	if r.FreeAt() != 2005 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

func TestGapResourceCapWithoutClock(t *testing.T) {
	r := NewGapResource("x")
	// Disjoint bookings far apart so nothing merges.
	for i := 0; i < maxIntervals+100; i++ {
		r.Acquire(Time(i*10), 5)
	}
	if len(r.iv) > maxIntervals+1 {
		t.Fatalf("interval count %d exceeded cap", len(r.iv))
	}
}

func TestBusyUntilResourceStillFIFO(t *testing.T) {
	r := NewResource("cpu")
	r.Acquire(100, 10)
	s, _ := r.Acquire(0, 5) // must NOT fill the hole before 100
	if s != 110 {
		t.Fatalf("busy-until resource gap-filled: start %v, want 110", s)
	}
}
