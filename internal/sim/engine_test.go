package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// TestEngineCancelStormCompacts checks the cancelled-event leak fix:
// cancelling most of a large queue must shrink the heap before anything
// is popped, and the survivors must still fire in order.
func TestEngineCancelStormCompacts(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	var fired []Time
	for i := 1; i <= 1000; i++ {
		d := Time(i)
		evs = append(evs, e.Schedule(d, func() { fired = append(fired, d) }))
	}
	for i, ev := range evs {
		if i%4 != 0 {
			ev.Cancel()
		}
	}
	if e.Pending() != 250 {
		t.Fatalf("Pending = %d, want 250", e.Pending())
	}
	if got := len(e.heap); got > 500 {
		t.Fatalf("heap holds %d entries after cancel storm, want compaction below 500", got)
	}
	e.Run()
	if len(fired) != 250 {
		t.Fatalf("fired %d, want 250", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("post-compaction firing out of order: %v before %v", fired[i-1], fired[i])
		}
	}
}

// TestEngineEventPooling checks that steady-state scheduling reuses event
// records instead of allocating.
func TestEngineEventPooling(t *testing.T) {
	e := NewEngine()
	var fn func()
	fn = func() {
		if e.Now() < 1000 {
			e.Schedule(1, fn)
		}
	}
	e.Schedule(1, fn)
	allocs := testing.AllocsPerRun(100, func() {
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(12)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12 (clock advances to deadline)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := NewRNG(42)
		var stamps []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			stamps = append(stamps, e.Now())
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Time(rng.Intn(100))
				e.Schedule(d, func() { spawn(depth - 1) })
			}
		}
		e.Schedule(0, func() { spawn(4) })
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewPEResource(Lit("link"))
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%v,%v), want [0,10)", s1, e1)
	}
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("overlapping acquire = [%v,%v), want [10,20)", s2, e2)
	}
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("idle-gap acquire = [%v,%v), want [100,105)", s3, e3)
	}
	if r.BusyTotal() != 25 {
		t.Fatalf("BusyTotal = %v, want 25", r.BusyTotal())
	}
	if r.Acquires() != 3 {
		t.Fatalf("Acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceNeverOverlaps(t *testing.T) {
	// Property: for any sequence of (at, dur) requests, booked intervals
	// never overlap and starts are monotonically non-decreasing.
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewPEResource(Lit("x"))
		lastEnd := Time(0)
		for _, q := range reqs {
			s, e := r.Acquire(Time(q.At), Time(q.Dur))
			if s < lastEnd {
				return false
			}
			if e < s {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2500000, "2.5ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestName(t *testing.T) {
	if got := Lit("cpu").String(); got != "cpu" {
		t.Fatalf("Lit = %q", got)
	}
	if got := Indexed("node", 17, ".fma").String(); got != "node17.fma" {
		t.Fatalf("Indexed = %q", got)
	}
}

func TestDurationOf(t *testing.T) {
	if d := DurationOf(1000, 1.0); d != 1000 {
		t.Fatalf("DurationOf(1000, 1 B/ns) = %v, want 1000ns", d)
	}
	if d := DurationOf(0, 5); d != 0 {
		t.Fatalf("DurationOf(0, _) = %v, want 0", d)
	}
	if d := DurationOf(100, 0); d != 0 {
		t.Fatalf("DurationOf(_, 0) = %v, want 0", d)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of range", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestMixIsDeterministicAndSpreads(t *testing.T) {
	if Mix(1) != Mix(1) {
		t.Fatal("Mix not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Mix(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Mix collided on small inputs: %d unique of 1000", len(seen))
	}
}

// zeroClock is the clock for gap-resource tests that never advance time.
func zeroClock() Time { return 0 }

func TestGapResourceFillsHoles(t *testing.T) {
	r := NewGapResource(Lit("link"), zeroClock)
	// A far-future booking must not block an earlier-ready request.
	s1, e1 := r.Acquire(1000, 50)
	if s1 != 1000 || e1 != 1050 {
		t.Fatalf("future booking = [%v,%v)", s1, e1)
	}
	s2, e2 := r.Acquire(0, 100)
	if s2 != 0 || e2 != 100 {
		t.Fatalf("gap-fill booking = [%v,%v), want [0,100)", s2, e2)
	}
	// A request that does not fit before 1000 goes after 1050.
	s3, _ := r.Acquire(950, 100)
	if s3 != 1050 {
		t.Fatalf("non-fitting booking starts at %v, want 1050", s3)
	}
}

func TestGapResourceExactFit(t *testing.T) {
	r := NewGapResource(Lit("x"), zeroClock)
	r.Acquire(0, 10)
	r.Acquire(20, 10)
	s, e := r.Acquire(5, 10) // exactly fits [10,20)
	if s != 10 || e != 20 {
		t.Fatalf("exact-fit booking = [%v,%v), want [10,20)", s, e)
	}
	if r.Intervals() != 1 {
		t.Fatalf("Intervals = %d after full merge, want 1", r.Intervals())
	}
	// Everything merged into one interval now: next booking at 30.
	s2, _ := r.Acquire(0, 1)
	if s2 != 30 {
		t.Fatalf("merged booking starts at %v, want 30", s2)
	}
}

func TestGapResourcePeek(t *testing.T) {
	r := NewGapResource(Lit("x"), zeroClock)
	r.Acquire(0, 10)
	r.Acquire(20, 10)
	if s, e := r.Peek(5, 10); s != 10 || e != 20 {
		t.Fatalf("Peek = [%v,%v), want [10,20)", s, e)
	}
	if r.Intervals() != 2 {
		t.Fatal("Peek booked")
	}
	// Peek with zero duration reports the next idle instant.
	if s, _ := r.Peek(3, 0); s != 10 {
		t.Fatalf("Peek(3,0) = %v, want 10", s)
	}
	if s, _ := r.Peek(15, 0); s != 15 {
		t.Fatalf("Peek(15,0) = %v, want 15", s)
	}
}

func TestGapResourceNeverOverlaps(t *testing.T) {
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		r := NewGapResource(Lit("x"), zeroClock)
		type iv struct{ s, e Time }
		var booked []iv
		for _, q := range reqs {
			if q.Dur == 0 {
				continue
			}
			s, e := r.Acquire(Time(q.At), Time(q.Dur))
			if s < Time(q.At) || e != s+Time(q.Dur) {
				return false
			}
			for _, b := range booked {
				if s < b.e && b.s < e {
					return false // overlap
				}
			}
			booked = append(booked, iv{s, e})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// linearGap is the reference gap-filling implementation (the old sorted
// slice): the treap must book bit-identically against it.
type linearGap struct{ iv []struct{ s, e Time } }

func (l *linearGap) acquire(at, dur Time) (Time, Time) {
	pos := at
	i := sort.Search(len(l.iv), func(i int) bool { return l.iv[i].e > at })
	for ; i < len(l.iv); i++ {
		if l.iv[i].s-pos >= dur {
			break
		}
		if l.iv[i].e > pos {
			pos = l.iv[i].e
		}
	}
	s, e := pos, pos+dur
	if dur > 0 {
		j := sort.Search(len(l.iv), func(i int) bool { return l.iv[i].s >= s })
		switch {
		case j > 0 && l.iv[j-1].e == s:
			l.iv[j-1].e = e
			if j < len(l.iv) && l.iv[j].s == e {
				l.iv[j-1].e = l.iv[j].e
				l.iv = append(l.iv[:j], l.iv[j+1:]...)
			}
		case j < len(l.iv) && l.iv[j].s == e:
			l.iv[j].s = s
		default:
			l.iv = append(l.iv, struct{ s, e Time }{})
			copy(l.iv[j+1:], l.iv[j:])
			l.iv[j] = struct{ s, e Time }{s, e}
		}
	}
	return s, e
}

// TestGapResourceMatchesLinearReference drives the treap and the
// reference slice implementation with identical random request streams
// (including clock advancement and pruning on the treap side) and
// requires identical bookings — the refactor's bit-identical guarantee.
func TestGapResourceMatchesLinearReference(t *testing.T) {
	rng := NewRNG(12345)
	var now Time
	r := NewGapResource(Lit("x"), func() Time { return now })
	ref := &linearGap{}
	for op := 0; op < 20000; op++ {
		at := now + Time(rng.Intn(2000))
		dur := Time(rng.Intn(50))
		s1, e1 := r.Acquire(at, dur)
		s2, e2 := ref.acquire(at, dur)
		if s1 != s2 || e1 != e2 {
			t.Fatalf("op %d: treap [%v,%v) != reference [%v,%v) for Acquire(%v,%v)",
				op, s1, e1, s2, e2, at, dur)
		}
		if op%64 == 63 {
			// Advance the clock; pruning must never change results. The
			// reference keeps everything, which is the ground truth.
			now += Time(rng.Intn(500))
		}
	}
	if r.Intervals() > ref.count() {
		t.Fatalf("treap holds %d intervals, reference %d", r.Intervals(), ref.count())
	}
}

func (l *linearGap) count() int { return len(l.iv) }

func TestGapResourcePruneWithClock(t *testing.T) {
	var now Time
	r := NewGapResource(Lit("x"), func() Time { return now })
	for i := 0; i < 100; i++ {
		r.Acquire(Time(i*10), 5)
	}
	now = 2000
	r.Acquire(2000, 5) // triggers prune
	if n := r.Intervals(); n > 2 {
		t.Fatalf("prune left %d intervals", n)
	}
	if r.FreeAt() != 2005 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

func TestGapResourceRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGapResource(nil clock) did not panic")
		}
	}()
	NewGapResource(Lit("x"), nil)
}

func TestBusyUntilResourceStillFIFO(t *testing.T) {
	r := NewPEResource(Lit("cpu"))
	r.Acquire(100, 10)
	s, _ := r.Acquire(0, 5) // must NOT fill the hole before 100
	if s != 110 {
		t.Fatalf("busy-until resource gap-filled: start %v, want 110", s)
	}
}

// probeLog is a test probe.
type probeLog struct {
	events   int
	bookings int
	booked   Time
}

func (p *probeLog) EventFired(now Time, pending int) { p.events++ }
func (p *probeLog) Booking(r Booked, at, start, end Time) {
	p.bookings++
	p.booked += end - start
}
func (p *probeLog) FaultNoted(FaultKind, Time) {}

// TestProbeObservesKernel checks that an installed probe sees every fired
// event and every booking on both resource kinds, and that KernelStats
// aggregates per-resource busy time.
func TestProbeObservesKernel(t *testing.T) {
	e := NewEngine()
	p := &probeLog{}
	ks := NewKernelStats()
	e.SetProbe(Probes(p, ks))
	cpu := NewPEResource(Lit("cpu"))
	cpu.SetProbe(e.Probe())
	link := NewGapResource(Lit("link"), e.Now)
	link.SetProbe(e.Probe())
	e.Schedule(5, func() {
		cpu.Acquire(e.Now(), 10)
		link.Acquire(e.Now(), 7)
	})
	e.Schedule(9, func() {})
	e.Run()
	if p.events != 2 || ks.Events != 2 {
		t.Fatalf("probe saw %d/%d events, want 2", p.events, ks.Events)
	}
	if p.bookings != 2 || p.booked != 17 {
		t.Fatalf("probe saw %d bookings totalling %v, want 2 totalling 17", p.bookings, p.booked)
	}
	if ks.BookedTime != 17 {
		t.Fatalf("KernelStats.BookedTime = %v, want 17", ks.BookedTime)
	}
	rows := ks.TopResources(10)
	if len(rows) != 2 || rows[0].Name != "cpu" || rows[0].Busy != 10 {
		t.Fatalf("TopResources = %+v", rows)
	}
}
