package sim

import (
	"fmt"
	"testing"
)

// chainPhase schedules a self-rescheduling chain of n events spaced step
// apart starting at t0, appending "(time,tag)" markers to log. Two events
// land on every instant (tags a and b scheduled in that order), so the log
// also witnesses (time, sequence) tie-breaking across a restore.
func chainPhase(k Kernel, t0, step Time, n int, log *[]string) {
	for i := 0; i < n; i++ {
		at := t0 + Time(i)*step
		for _, tag := range []string{"a", "b"} {
			tag := tag
			k.At(at, func() {
				*log = append(*log, fmt.Sprintf("%v/%s", k.Now(), tag))
			})
		}
	}
}

// runRoundTrip drives phase 1 on a kernel built by mk, checkpoints at
// quiescence, then replays phase 2 on a fresh restored kernel; it returns
// the phase-2 log plus the final clock.
func runRoundTrip(t *testing.T, mk func() Kernel) ([]string, Time) {
	t.Helper()
	k1 := mk()
	var log1 []string
	chainPhase(k1, 10, 7, 5, &log1)
	k1.Run()
	ck, err := k1.(Checkpointer).Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ck.Now != k1.Now() {
		t.Fatalf("checkpoint clock %v != engine clock %v", ck.Now, k1.Now())
	}
	k2 := mk()
	if err := k2.(Checkpointer).Restore(ck); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if k2.Now() != ck.Now {
		t.Fatalf("restored clock %v != checkpoint %v", k2.Now(), ck.Now)
	}
	var log2 []string
	chainPhase(k2, ck.Now+3, 5, 4, &log2)
	k2.Run()
	return log2, k2.Now()
}

// TestKernelCheckpointRoundTrip proves the restore contract on both
// kernels: a fresh kernel restored from a quiescent checkpoint replays a
// second phase identically to the unbroken run, sequence tie-breaks
// included, at several shard counts.
func TestKernelCheckpointRoundTrip(t *testing.T) {
	flat := func() Kernel { return NewEngine() }
	// Continuous oracle: both phases on one engine.
	k := NewEngine()
	var oracle []string
	chainPhase(k, 10, 7, 5, &oracle)
	k.Run()
	chainPhase(k, k.Now()+3, 5, 4, &oracle)
	k.Run()
	oracle = oracle[10:] // phase 2 only
	oracleEnd := k.Now()

	for _, tc := range []struct {
		name string
		mk   func() Kernel
	}{
		{"flat", flat},
		{"sharded2", func() Kernel { return NewShardedEngine(2, []int32{0, 1}) }},
		{"sharded4", func() Kernel { return NewShardedEngine(4, []int32{0, 1, 2, 3}) }},
	} {
		log, end := runRoundTrip(t, tc.mk)
		if end != oracleEnd {
			t.Errorf("%s: resumed end %v, oracle %v", tc.name, end, oracleEnd)
		}
		if len(log) != len(oracle) {
			t.Fatalf("%s: resumed fired %d events, oracle %d", tc.name, len(log), len(oracle))
		}
		for i := range log {
			if log[i] != oracle[i] {
				t.Errorf("%s: event %d: resumed %q, oracle %q", tc.name, i, log[i], oracle[i])
			}
		}
	}
}

// TestCheckpointRequiresQuiescence pins the coordination rule: snapshots
// and restores of a kernel with pending events are refused.
func TestCheckpointRequiresQuiescence(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint with a pending event did not fail")
	}
	if err := e.Restore(KernelCheckpoint{Now: 100}); err == nil {
		t.Fatal("restore with a pending event did not fail")
	}
	e.Run()
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("quiescent checkpoint: %v", err)
	}
	// Restoring backward must be refused too: the recovered timeline is
	// monotone.
	e.RunUntil(ck.Now + 50)
	if err := e.Restore(ck); err == nil {
		t.Fatal("restore did not refuse to rewind the clock")
	}
}

// TestCheckpointAdvanced pins the forward-warp helper used to price
// detection delay and restart cost into a rollback.
func TestCheckpointAdvanced(t *testing.T) {
	ck := KernelCheckpoint{Now: 10, LastAt: 10, Seq: 3, Fired: 3}
	w := ck.Advanced(25)
	if w.Now != 25 || w.LastAt != 25 || w.Seq != 3 || w.Fired != 3 {
		t.Fatalf("Advanced(25) = %+v", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advanced backward did not panic")
		}
	}()
	ck.Advanced(5)
}
