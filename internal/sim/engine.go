package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.Schedule and Engine.At.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 when not queued
	cancel bool
}

// Time reports the virtual time at which the event fires (or fired).
func (ev *Event) Time() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired, or cancelling twice, is a no-op.
func (ev *Event) Cancel() { ev.cancel = true }

// Engine is a deterministic discrete-event loop. It is not safe for
// concurrent use: the whole simulated machine lives on one goroutine, which
// is what makes runs bit-reproducible.
type Engine struct {
	now    Time
	heap   eventHeap
	seq    uint64
	fired  uint64
	inStep bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero. Events scheduled for the same instant fire in the order
// they were scheduled.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error:
// the simulation's causality would break silently, so it panics loudly.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// Step fires the single next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until none remain and returns the number fired.
func (e *Engine) Run() uint64 {
	start := e.fired
	for e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (if the clock has not already passed it). It returns the
// number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.cancel {
			heap.Pop(&e.heap)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.fired - start
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// eventHeap is a min-heap on (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
