package sim

import "fmt"

// Event is a handle to a scheduled callback, usable to Cancel it before it
// fires. Event records are pooled: once an event has fired (or its
// cancellation has been reclaimed), the record is reused by a later
// At/Schedule call. Holding a handle to a *pending* event is always safe;
// a handle retained past its firing must not be used again.
type Event struct {
	eng   *Engine
	at    Time
	fn    func()
	afn   func(any) // closure-free form: afn(arg) fires instead of fn()
	arg   any
	state uint8
	next  *Event // free-list link while pooled
}

// Event states. A record cycles free -> pending -> (fired|cancelled) -> free.
const (
	evFree uint8 = iota
	evPending
	evCancelled
)

// Time reports when the event is scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is lazy: the heap slot
// stays until popped or until enough cancellations accumulate to trigger
// compaction (cancelled > live/2), so a cancel storm cannot leak memory.
func (ev *Event) Cancel() {
	if ev.state != evPending {
		return
	}
	ev.state = evCancelled
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e := ev.eng
	e.live--
	e.cancelled++
	if e.cancelled > e.live/2 {
		e.compact()
	}
}

// entry is one heap slot: the ordering keys are inlined so comparisons
// never chase the record pointer.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

// Engine is a deterministic discrete-event scheduler: a virtual clock and
// a four-ary min-heap of entries ordered by (time, sequence). Events
// scheduled for the same instant fire in scheduling order, which makes
// every simulation reproducible regardless of map iteration or goroutine
// scheduling (everything runs on the caller's goroutine).
//
// The heap holds value entries (24 bytes) over pooled Event records, so
// steady-state scheduling allocates nothing and sift operations stay in
// cache; the four-ary layout halves tree depth versus a binary heap,
// which favors the pop-heavy DES workload.
type Engine struct {
	now       Time
	lastAt    Time // timestamp of the most recently fired event (RunUntil moves now past it)
	heap      []entry
	seq       uint64
	seqp      *uint64 //simlint:shared -- lockstep ShardedEngine shares one counter across shards; NewShardedEngine(parallel) nils it before any worker exists
	fired     uint64
	live      int // pending (non-cancelled) events; Pending() is O(1)
	cancelled int // cancelled events still occupying heap slots
	free      *Event
	probe     Probe
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// SetProbe installs p to observe every fired event. A nil probe (the
// default) costs one predictable branch per event.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// Probe reports the installed probe, if any, so resources created after
// the engine can inherit it.
func (e *Engine) Probe() Probe { return e.probe }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return e.live }

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero. Events scheduled for the same instant fire in the order
// they were scheduled.
//
//simlint:hotpath
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an error:
// the simulation's causality would break silently, so it panics loudly.
//
//simlint:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.acquire(t)
	ev.fn = fn
	return ev
}

// ScheduleArg is Schedule for the closure-free form: fn(arg) runs after
// delay units of virtual time.
//
//simlint:hotpath
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.AtArg(e.now+delay, fn, arg)
}

// AtArg runs fn(arg) at absolute virtual time t. This is the closure-free
// scheduling form: with fn a package-level function and arg a pointer into
// caller-owned (typically pooled) state, scheduling allocates nothing —
// the callback pair lives inside the pooled Event record.
//
//simlint:hotpath
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := e.acquire(t)
	ev.afn = fn
	ev.arg = arg
	return ev
}

// AtNode is At with a routing hint: the callback concerns the given
// simulated node. The flat engine has a single event population, so the
// hint is ignored; a ShardedEngine uses it to book the event into the
// owning shard's heap.
//
//simlint:hotpath
func (e *Engine) AtNode(node int, t Time, fn func()) *Event { return e.At(t, fn) }

// AtNodeArg is AtArg with a node routing hint (see AtNode).
//
//simlint:hotpath
func (e *Engine) AtNodeArg(node int, t Time, fn func(any), arg any) *Event {
	return e.AtArg(t, fn, arg)
}

// acquire pops a pooled record (or allocates the pool's next one), books it
// at t, and pushes its heap entry. The caller sets exactly one of fn/afn.
func (e *Engine) acquire(t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		//simlint:allow hotpathalloc -- event pool miss path: allocates only while the free list is empty; steady state recycles (the list is per-Engine, so each shard worker recycles its own pool — no cross-shard aliasing)
		ev = &Event{eng: e}
	}
	ev.at = t
	ev.state = evPending
	e.push(entry{at: t, seq: e.nextSeq(), ev: ev})
	e.live++
	return ev
}

// nextSeq returns the next scheduling sequence number. Shards of a
// lockstep ShardedEngine share one counter (seqp), which is what makes the
// sharded total order (time, sequence) coincide with the flat engine's:
// identical execution order implies identical scheduling order implies
// identical sequence assignment, by induction over fired events.
func (e *Engine) nextSeq() uint64 {
	if e.seqp != nil { //simlint:allow atomicshared -- nil check plus read of the lockstep-only counter: parallel mode nils seqp before any worker starts
		s := *e.seqp    //simlint:allow atomicshared -- lockstep-only path: parallel mode nils seqp before workers start, so no window ever runs this branch
		*e.seqp = s + 1 //simlint:allow shardescape -- same lockstep-only argument: the shared counter exists only while a single goroutine runs
		return s
	}
	s := e.seq
	e.seq = s + 1
	return s
}

// peek reports the ordering key of the next live event without firing it,
// reclaiming any cancelled records sitting on top of the heap. ok is false
// when no live events remain.
func (e *Engine) peek() (at Time, seq uint64, ok bool) {
	for len(e.heap) > 0 {
		top := &e.heap[0]
		if top.ev.state != evCancelled {
			return top.at, top.seq, true
		}
		en := e.popTop()
		e.cancelled--
		e.release(en.ev)
	}
	return 0, 0, false
}

// release returns a record to the pool.
func (e *Engine) release(ev *Event) {
	ev.state = evFree
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.next = e.free
	e.free = ev
}

// Step fires the single next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		en := e.popTop()
		ev := en.ev
		if ev.state == evCancelled {
			e.cancelled--
			e.release(ev)
			continue
		}
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		// Release before running: the callback routinely schedules a
		// follow-up, and reusing this record immediately is what keeps the
		// steady state allocation-free.
		e.release(ev)
		e.live--
		e.now = en.at
		e.lastAt = en.at
		e.fired++
		if e.probe != nil {
			e.probe.EventFired(e.now, e.live)
		}
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until none remain and returns the number fired.
func (e *Engine) Run() uint64 {
	start := e.fired
	for e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (if the clock has not already passed it). It returns the
// number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	for len(e.heap) > 0 {
		top := &e.heap[0]
		if top.ev.state == evCancelled {
			en := e.popTop()
			e.cancelled--
			e.release(en.ev)
			continue
		}
		if top.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.fired - start
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// compact evicts cancelled entries and re-heapifies. Rebuilding with
// Floyd's algorithm is O(n) and the (time, sequence) total order fully
// determines pop order, so determinism is unaffected.
func (e *Engine) compact() {
	h := e.heap
	w := 0
	for _, en := range h {
		if en.ev.state == evCancelled {
			e.release(en.ev)
			continue
		}
		h[w] = en
		w++
	}
	for i := w; i < len(h); i++ {
		h[i] = entry{}
	}
	e.heap = h[:w]
	e.cancelled = 0
	for i := (w - 2) >> 2; i >= 0; i-- {
		e.siftDown(e.heap[i], i)
	}
}

// push appends en and sifts it up, holding en aside and sliding parents
// down so en is written once at its final slot.
func (e *Engine) push(en entry) {
	e.heap = append(e.heap, entry{})
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < en.at || (h[p].at == en.at && h[p].seq < en.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = en
}

// popTop removes and returns the minimum entry.
func (e *Engine) popTop() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = entry{}
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last, 0)
	}
	return top
}

// siftDown places en into the heap starting at slot i, sliding smaller
// children up past it.
func (e *Engine) siftDown(en entry, i int) {
	h := e.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		if en.at < h[m].at || (en.at == h[m].at && en.seq < h[m].seq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = en
}
