package sim

// GapResource models shared hardware booked with a gap-filling discipline:
// bookings are kept as a set of disjoint busy intervals and a new request
// fills the earliest gap at or after its ready time. This is right for
// shared network hardware (NIC engines, torus links), where posts arrive
// in event order, not ready order: a transfer whose sender's PE-local
// clock ran far ahead must not block an independent, earlier-ready
// transfer posted a moment later.
//
// The interval set is a treap augmented with subtree summaries (earliest
// start/end, latest end, widest internal gap), giving O(log n) insertion
// with neighbour merging and a gap search that skips subtrees which
// cannot contain a fitting hole. Booking results are bit-identical to a
// linear sorted-slice implementation: the (earliest gap >= ready time)
// answer is unique, so only the cost changes.
//
// Every gap resource has a clock (the owning engine's Now); intervals
// wholly in the dead past — no future request may ask for time before
// now — are pruned exactly, so memory is bounded by in-flight bookings
// with no lossy cap.
type GapResource struct {
	name      Name
	clock     func() Time
	root      *gnode
	pool      *gnode // free-list of recycled nodes, linked through l
	prioSeq   uint64
	count     int
	busyTotal Time
	acquires  uint64
	probe     Probe
}

// gnode is one busy interval [s, e) plus treap linkage and subtree
// summaries for the augmented search.
type gnode struct {
	s, e   Time
	prio   uint64
	l, r   *gnode
	minS   Time // earliest interval start in this subtree
	minE   Time // earliest interval end in this subtree
	maxE   Time // latest interval end in this subtree
	maxGap Time // widest gap strictly between intervals of this subtree
}

// NewGapResource returns an idle gap-filling resource. The clock is
// mandatory: it is what allows exact pruning of dead intervals, and a
// resource without one would either leak or (as the old implementation
// did) silently drop potentially-live bookings past an arbitrary cap.
func NewGapResource(name Name, clock func() Time) *GapResource {
	r := &GapResource{}
	InitGapResource(r, name, clock)
	return r
}

// InitGapResource initializes r in place with NewGapResource semantics,
// for callers that slab-allocate resource arrays (one allocation for a
// whole network's links) instead of one heap object per resource.
func InitGapResource(r *GapResource, name Name, clock func() Time) {
	if clock == nil {
		panic("sim: NewGapResource requires a clock for exact dead-interval pruning")
	}
	*r = GapResource{name: name, clock: clock}
}

// SetProbe installs p to observe every booking (nil disables).
func (r *GapResource) SetProbe(p Probe) { r.probe = p }

// Name reports the diagnostic name given at construction.
func (r *GapResource) Name() string { return r.name.String() }

// Acquire books the resource for dur units starting no earlier than at and
// returns the booked interval [start, end): the earliest gap at or after
// at that fits dur.
func (r *GapResource) Acquire(at, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.acquires++
	r.busyTotal += dur
	if r.root != nil {
		if now := r.clock(); r.root.minE <= now {
			r.root = r.dropDead(r.root, now)
		}
	}
	s, ok, out := findSlot(r.root, at, dur)
	if !ok {
		s = out // no internal gap fits: book right after the last conflict
	}
	start, end = s, s+dur
	if dur > 0 {
		r.insert(start, end)
	}
	if r.probe != nil {
		r.probe.Booking(r, at, start, end)
	}
	return start, end
}

// Peek reports where Acquire(at, dur) would book, without booking.
func (r *GapResource) Peek(at, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	s, ok, out := findSlot(r.root, at, dur)
	if !ok {
		s = out
	}
	return s, s + dur
}

// findSlot searches n's subtree, in interval order, for the earliest gap
// at or after pos that fits dur. It returns the gap start when found;
// otherwise outPos is the earliest time after every conflicting interval
// seen so far (the caller books there). Subtrees that start before pos
// and contain no gap wide enough are skipped via the maxGap summary.
func findSlot(n *gnode, pos, dur Time) (start Time, found bool, outPos Time) {
	if n == nil {
		return 0, false, pos
	}
	if n.maxE <= pos || (n.minS-pos < dur && n.maxGap < dur) {
		// Nothing in this subtree can fit: it lies entirely before pos
		// (disjoint sorted intervals have sorted ends, so maxE bounds the
		// whole subtree), or neither the gap before its first interval
		// nor any internal gap is wide enough. Skip past it entirely.
		if n.maxE > pos {
			pos = n.maxE
		}
		return 0, false, pos
	}
	if start, found, pos = findSlot(n.l, pos, dur); found {
		return start, true, pos
	}
	if n.s-pos >= dur {
		return pos, true, pos
	}
	if n.e > pos {
		pos = n.e
	}
	return findSlot(n.r, pos, dur)
}

// insert adds [s, e) to the interval set, merging touching neighbours so
// the set stays disjoint and non-adjacent.
func (r *GapResource) insert(s, e Time) {
	if r.root == nil {
		r.root = r.node(s, e)
		return
	}
	if s >= r.root.maxE {
		// Appending past every existing interval: the overwhelmingly
		// common case for busy engines. Touching the rightmost interval
		// extends it in place; otherwise hang a new rightmost node.
		if s == r.root.maxE {
			extendRight(r.root, e)
			return
		}
		r.root = r.insertNode(r.root, r.node(s, e))
		return
	}
	if p := predecessor(r.root, s); p != nil && p.e == s {
		s = p.s
		r.root = r.remove(r.root, p.s)
	}
	if n := exact(r.root, e); n != nil {
		e = n.e
		r.root = r.remove(r.root, n.s)
	}
	r.root = r.insertNode(r.root, r.node(s, e))
}

// extendRight grows the rightmost interval's end to e, refreshing
// summaries on the way back up.
func extendRight(n *gnode, e Time) {
	if n.r != nil {
		extendRight(n.r, e)
	} else {
		n.e = e
	}
	upd(n)
}

// predecessor returns the interval with the greatest start < s, or nil.
func predecessor(n *gnode, s Time) *gnode {
	var best *gnode
	for n != nil {
		if n.s < s {
			best = n
			n = n.r
		} else {
			n = n.l
		}
	}
	return best
}

// exact returns the interval starting exactly at s, or nil.
func exact(n *gnode, s Time) *gnode {
	for n != nil {
		switch {
		case s < n.s:
			n = n.l
		case s > n.s:
			n = n.r
		default:
			return n
		}
	}
	return nil
}

// insertNode places nn (a fresh, summary-initialised node) by treap
// priority: rotations are expressed as a split at nn's key.
func (r *GapResource) insertNode(n, nn *gnode) *gnode {
	if n == nil {
		return nn
	}
	if nn.prio < n.prio {
		nn.l, nn.r = split(n, nn.s)
		upd(nn)
		return nn
	}
	if nn.s < n.s {
		n.l = r.insertNode(n.l, nn)
	} else {
		n.r = r.insertNode(n.r, nn)
	}
	upd(n)
	return n
}

// split partitions n's subtree into starts < key and starts >= key.
func split(n *gnode, key Time) (l, rr *gnode) {
	if n == nil {
		return nil, nil
	}
	if n.s < key {
		n.r, rr = split(n.r, key)
		upd(n)
		return n, rr
	}
	l, n.l = split(n.l, key)
	upd(n)
	return l, n
}

// remove deletes the interval starting at s (which must exist).
func (r *GapResource) remove(n *gnode, s Time) *gnode {
	if n == nil {
		panic("sim: gap interval missing")
	}
	switch {
	case s < n.s:
		n.l = r.remove(n.l, s)
	case s > n.s:
		n.r = r.remove(n.r, s)
	default:
		res := merge(n.l, n.r)
		r.release(n)
		return res
	}
	upd(n)
	return n
}

// merge joins two subtrees where every start in a precedes every start
// in b.
func merge(a, b *gnode) *gnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio < b.prio {
		a.r = merge(a.r, b)
		upd(a)
		return a
	}
	b.l = merge(a, b.l)
	upd(b)
	return b
}

// dropDead removes every interval ending at or before now. The minE
// summary prunes clean subtrees without visiting them.
func (r *GapResource) dropDead(n *gnode, now Time) *gnode {
	if n == nil || n.minE > now {
		return n
	}
	n.l = r.dropDead(n.l, now)
	if n.e <= now {
		right := r.dropDead(n.r, now)
		r.release(n)
		return right
	}
	upd(n)
	return n
}

// node takes a pooled record (or allocates) for interval [s, e). The
// treap priority is a deterministic hash of an insertion counter, so tree
// shape — and therefore cost, but never results — is reproducible.
func (r *GapResource) node(s, e Time) *gnode {
	n := r.pool
	if n != nil {
		r.pool = n.l
	} else {
		//simlint:allow hotpathalloc -- treap node pool miss path: allocates only while the pool is empty; steady state recycles (the pool is per-GapResource, which is per-NIC and so shard-local in the parallel window)
		n = &gnode{}
	}
	r.prioSeq++
	*n = gnode{s: s, e: e, prio: Mix(r.prioSeq)}
	upd(n)
	r.count++
	return n
}

// release returns a node to the pool.
func (r *GapResource) release(n *gnode) {
	n.r = nil
	n.l = r.pool
	r.pool = n
	r.count--
}

// upd recomputes n's subtree summaries from its children. In-order starts
// are sorted and intervals disjoint, so ends are sorted too: minS/minE
// come from the leftmost path, maxE from the rightmost.
func upd(n *gnode) {
	if n.l != nil {
		n.minS, n.minE = n.l.minS, n.l.minE
	} else {
		n.minS, n.minE = n.s, n.e
	}
	if n.r != nil {
		n.maxE = n.r.maxE
	} else {
		n.maxE = n.e
	}
	g := Time(0)
	if n.l != nil {
		g = n.l.maxGap
		if d := n.s - n.l.maxE; d > g {
			g = d
		}
	}
	if n.r != nil {
		if n.r.maxGap > g {
			g = n.r.maxGap
		}
		if d := n.r.minS - n.e; d > g {
			g = d
		}
	}
	n.maxGap = g
}

// Intervals reports how many disjoint busy intervals are currently held
// (diagnostic; dead intervals count until the next Acquire prunes them).
func (r *GapResource) Intervals() int { return r.count }

// FreeAt reports the time after which the resource is idle forever given
// current bookings (the end of the last interval).
func (r *GapResource) FreeAt() Time {
	if r.root == nil {
		return 0
	}
	return r.root.maxE
}

// BusyTotal reports the cumulative booked time.
func (r *GapResource) BusyTotal() Time { return r.busyTotal }

// Acquires reports how many bookings have been made.
func (r *GapResource) Acquires() uint64 { return r.acquires }

// Utilization reports busyTotal / window, clamped to [0, 1]; it is a
// convenience for link-load reporting.
func (r *GapResource) Utilization(window Time) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to idle and clears statistics.
func (r *GapResource) Reset() {
	for r.root != nil {
		r.root = r.remove(r.root, r.root.s)
	}
	r.busyTotal = 0
	r.acquires = 0
}
