package sim

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every stochastic choice in the simulator (task placement, synthetic
// subtree costs) draws from an explicitly seeded RNG so runs reproduce
// exactly; the standard library's global source is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Mix hashes an arbitrary 64-bit value through the splitmix64 finalizer.
// It is used to derive deterministic per-object values (e.g. synthetic
// subtree costs keyed by a task's state) without consuming RNG state.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
