package sim

import "testing"

// BenchmarkEngineScheduleFire measures the steady-state cost of one
// schedule+fire cycle: the engine's hot path, which every layer of the
// stack drives millions of times per experiment.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	var fn func()
	fn = func() {
		e.Schedule(1, fn)
	}
	e.Schedule(1, fn)
	b.ReportAllocs()
	for b.Loop() {
		e.Step()
	}
}

// BenchmarkGapResourceAcquire measures gap-filling bookings under two
// interval mixes:
//
//   - dense: requests land contiguously, so intervals merge and the live
//     set stays tiny (the common NIC-engine case);
//   - sparse: requests leave holes, so the live set grows until the clock
//     sweeps past and pruning reclaims it (the loaded torus-link case).
func BenchmarkGapResourceAcquire(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		var now Time
		r := NewGapResource(Lit("x"), func() Time { return now })
		b.ReportAllocs()
		for b.Loop() {
			_, e := r.Acquire(now, 10)
			now = e
		}
	})
	b.Run("sparse", func(b *testing.B) {
		var now Time
		r := NewGapResource(Lit("x"), func() Time { return now })
		b.ReportAllocs()
		i := 0
		for b.Loop() {
			// Book ahead of now with holes; advance the clock slowly so a
			// few hundred live intervals persist between prunes.
			at := now + Time(i%512)*20
			r.Acquire(at, 10)
			if i%512 == 511 {
				now += 512 * 20
			}
			i++
		}
	})
}
