package sim

import (
	"testing"
)

// stormState drives a randomized self-perpetuating event storm over a set
// of simulated nodes: each firing records its identity, mutates shared
// state, schedules follow-ups on random nodes (including ties at the same
// instant), and occasionally cancels a pending event.
type stormState struct {
	k      Kernel
	rng    *RNG
	nodes  int
	budget int
	log    []stormRecord
}

type stormRecord struct {
	at   Time
	id   uint64
	pend int
}

func (s *stormState) fire(arg any) {
	id := arg.(uint64)
	s.log = append(s.log, stormRecord{at: s.k.Now(), id: id, pend: s.k.Pending()})
	if s.budget <= 0 {
		return
	}
	var batch [3]*Event
	n := s.rng.Intn(3)
	for i := 0; i < n; i++ {
		s.budget--
		node := s.rng.Intn(s.nodes)
		// Mix zero delays (ties) with spread-out ones.
		delay := Time(s.rng.Intn(5)) * 7
		batch[i] = s.k.AtNodeArg(node, s.k.Now()+delay, s.fire, s.rng.Uint64())
	}
	// Cancel only events scheduled in this callback: they are guaranteed
	// still pending (handles past firing are invalid — records recycle).
	if n > 0 && s.rng.Intn(4) == 0 {
		batch[s.rng.Intn(n)].Cancel()
	}
}

func runStorm(k Kernel, nodes int, seed uint64) []stormRecord {
	s := &stormState{k: k, rng: NewRNG(seed), nodes: nodes, budget: 4000}
	for n := 0; n < nodes; n++ {
		s.k.AtNodeArg(n, Time(n%13), s.fire, uint64(n))
	}
	k.Run()
	return s.log
}

func stripedShards(nodes, shards int) []int32 {
	m := make([]int32, nodes)
	for n := range m {
		m[n] = int32(n * shards / nodes)
	}
	return m
}

// TestLockstepMatchesFlat is the tentpole invariant: a lockstep
// ShardedEngine fires the exact event sequence of the flat Engine at
// every shard count, cancellations and ties included.
func TestLockstepMatchesFlat(t *testing.T) {
	const nodes = 24
	for _, seed := range []uint64{1, 7, 42, 1234567} {
		want := runStorm(NewEngine(), nodes, seed)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty storm", seed)
		}
		for _, shards := range []int{1, 2, 3, 4, 7} {
			got := runStorm(NewShardedEngine(shards, stripedShards(nodes, shards)), nodes, seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d shards %d: fired %d events, flat fired %d", seed, shards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d: event %d = %+v, flat %+v", seed, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedEngineBasics covers the kernel-surface parity details the
// storm does not: clocks, counts, probes, RunUntil deadlines.
func TestShardedEngineBasics(t *testing.T) {
	se := NewShardedEngine(2, []int32{0, 0, 1, 1})
	flat := NewEngine()
	var seOrder, flatOrder []int
	for _, k := range []struct {
		kern  Kernel
		order *[]int
	}{{se, &seOrder}, {flat, &flatOrder}} {
		kern, order := k.kern, k.order
		for i, node := range []int{3, 0, 2, 1} {
			i := i
			kern.AtNode(node, Time(10), func() { *order = append(*order, i) })
		}
		kern.Schedule(5, func() { *order = append(*order, 99) })
	}
	if se.Pending() != 5 || flat.Pending() != 5 {
		t.Fatalf("pending: sharded %d flat %d, want 5", se.Pending(), flat.Pending())
	}
	if n := se.RunUntil(7); n != 1 {
		t.Fatalf("RunUntil(7) fired %d, want 1", n)
	}
	if se.Now() != 7 {
		t.Fatalf("Now after RunUntil(7) = %v", se.Now())
	}
	flat.RunUntil(7)
	se.Run()
	flat.Run()
	if len(seOrder) != len(flatOrder) {
		t.Fatalf("order lengths differ: %v vs %v", seOrder, flatOrder)
	}
	for i := range seOrder {
		if seOrder[i] != flatOrder[i] {
			t.Fatalf("firing order %v, flat %v", seOrder, flatOrder)
		}
	}
	if se.Fired() != flat.Fired() {
		t.Fatalf("fired: sharded %d flat %d", se.Fired(), flat.Fired())
	}
}

// TestShardedProbeMatchesFlat verifies the probe stream (including the
// globally summed pending count) is identical between flat and sharded.
func TestShardedProbeMatchesFlat(t *testing.T) {
	type obs struct {
		now  Time
		pend int
	}
	collect := func(k Kernel) []obs {
		var got []obs
		k.SetProbe(probeFunc(func(now Time, pending int) {
			got = append(got, obs{now, pending})
		}))
		runStorm(k, 16, 99)
		return got
	}
	want := collect(NewEngine())
	got := collect(NewShardedEngine(3, stripedShards(16, 3)))
	if len(want) != len(got) {
		t.Fatalf("probe streams: %d vs %d observations", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("observation %d: flat %+v sharded %+v", i, want[i], got[i])
		}
	}
	if want[0].pend == 0 {
		t.Fatal("probe saw no pending events; storm too small to be meaningful")
	}
}

type probeFunc func(now Time, pending int)

func (f probeFunc) EventFired(now Time, pending int) { f(now, pending) }
func (f probeFunc) Booking(Booked, Time, Time, Time) {}
func (f probeFunc) FaultNoted(FaultKind, Time)       {}

// haloCell is a node of the parallel-window test workload: a fixed-cadence
// halo exchange on a ring where state flows through values, never times.
type haloCell struct {
	sh    *Shard
	cells []*haloCell
	node  int
	steps int
	value uint64
	recv  uint64
	inbox [2]uint64 // reused per-edge transfer records (left, right)
	la    Time
}

const haloStep = Time(1000)

func (c *haloCell) step(any) {
	c.value = c.value*6364136223846793005 + c.recv + 1442695040888963407
	c.recv = 0
	now := c.sh.Now()
	n := len(c.cells)
	left, right := c.cells[(c.node+n-1)%n], c.cells[(c.node+1)%n]
	left.inbox[1] = c.value
	right.inbox[0] = c.value
	c.sh.Send(left.node, now+c.la, left.arriveRight, nil)
	c.sh.Send(right.node, now+c.la, right.arriveLeft, nil)
	if c.steps--; c.steps > 0 {
		c.sh.AtArg(now+haloStep, c.step, nil)
	}
}

func (c *haloCell) arriveLeft(any)  { c.recv += c.inbox[0] }
func (c *haloCell) arriveRight(any) { c.recv += c.inbox[1] }

func runHalo(shards int, parallel bool) uint64 {
	const nodes, steps = 32, 20
	la := Time(405)
	se := NewParallelEngine(shards, stripedShards(nodes, shards), la)
	cells := make([]*haloCell, nodes)
	for n := range cells {
		cells[n] = &haloCell{
			sh: se.ShardHandle(se.ShardOf(n)), node: n,
			steps: steps, value: uint64(n)*0x9e3779b9 + 1, la: la,
		}
	}
	for _, c := range cells {
		c.cells = cells
		c.sh.AtArg(0, c.step, nil)
	}
	if parallel {
		se.RunParallel()
	} else {
		se.Run()
	}
	var sum uint64
	for _, c := range cells {
		sum += c.value * 31
	}
	return sum
}

// TestParallelWindowsShardInvariant: the conservative-window executor
// produces the same result at shards 1, 2, 4 — and the same result the
// lockstep executor produces on the identical workload.
func TestParallelWindowsShardInvariant(t *testing.T) {
	want := runHalo(1, false)
	for _, shards := range []int{1, 2, 4} {
		if got := runHalo(shards, false); got != want {
			t.Fatalf("lockstep shards=%d: %#x, want %#x", shards, got, want)
		}
		if got := runHalo(shards, true); got != want {
			t.Fatalf("parallel shards=%d: %#x, want %#x", shards, got, want)
		}
	}
}

// TestCrossShardLookaheadViolationPanics: a send that would land inside
// the current window must panic rather than silently break determinism.
func TestCrossShardLookaheadViolationPanics(t *testing.T) {
	se := NewParallelEngine(2, []int32{0, 1}, 500)
	sh := se.ShardHandle(0)
	se.running, se.windowEnd = true, 500 // what a worker would observe mid-window
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	sh.Send(1, 10, func(any) {}, nil)
}
