package sim

import "fmt"

// ShardedEngine partitions one simulation's event population across N
// shards, each a pooled-heap Engine owning a group of simulated nodes.
// It runs in one of two modes:
//
// Lockstep (NewShardedEngine): every shard draws scheduling sequence
// numbers from one shared counter, and Run/Step always fire the globally
// minimal (time, sequence) event. Because execution order determines
// scheduling order and scheduling order determines sequence assignment,
// induction over fired events shows the lockstep order is *identical* to
// the flat Engine's — results are bit-identical at every shard count,
// probes included. This is the mode the full machine stack uses: the
// network's shared link bookings make its events non-commutative, so they
// are never executed concurrently, but the event population is already
// partitioned by owning node and every scheduling layer routes through
// AtNode/AtNodeArg.
//
// Parallel (NewParallelEngine): shards advance concurrently inside
// conservative windows bounded by the kernel lookahead L (for the gemini
// model, InjectionLatency + minCrossShardHops × HopLatency). Each window,
// the coordinator computes the horizon H = min-next-event + L, releases
// one worker goroutine per shard to fire its local events with t < H, and
// merges cross-shard sends at the barrier. An event executing at τ ≥
// min-next-event may schedule remotely only at τ' ≥ τ + L ≥ H, so no
// remote event can land inside the window that produced it — the
// Chandy/Misra conservative argument. Cross-shard sends buffer in
// single-writer outboxes and merge in (timestamp, source shard, emission
// index) order, so results are independent of goroutine scheduling and of
// the shard count for shard-confined workloads.
type ShardedEngine struct {
	shards    []*Engine
	nodeShard []int32
	seq       uint64 // shared scheduling counter (lockstep mode)
	now       Time
	cur       int // shard receiving node-less schedules (last to fire)
	probe     Probe

	// Parallel-window state.
	parallel  bool
	lookahead Time
	handles   []*Shard
	started   bool
	running   bool // workers active inside a window (misuse guard)
	windowEnd Time

	// Window-protocol mode state (see RunMode). mode selects what Run
	// executes; inWindow marks a single-threaded window in flight
	// (RunWindowed's analogue of running); windowFloor is the current
	// window's minimum event time, the conservative lower bound on any
	// booking made inside it; barriers are the hooks run after every
	// window's outbox merge (the network model drains its reservation
	// outboxes here).
	mode        RunMode
	inWindow    bool
	windowFloor Time
	barriers    []func()
}

// RunMode selects how a parallel-capable ShardedEngine executes events.
type RunMode int

const (
	// RunLockstep fires the globally minimal (time, sequence, shard)
	// event one at a time on the caller's goroutine — the oracle order.
	RunLockstep RunMode = iota
	// RunWindowed executes the conservative window protocol — horizons,
	// outbox merges, barrier hooks — single-threaded: shards take their
	// windows sequentially on the caller's goroutine. Subsystems that
	// defer cross-shard effects to the barrier (the network model's
	// reservation path) see exactly the windows RunParallel would give
	// them, with no worker goroutines.
	RunWindowed
	// RunParallel executes the same window protocol with one worker
	// goroutine per shard.
	RunParallel
)

// NewShardedEngine returns a lockstep sharded kernel: shards engines over
// the given node→shard map. Results are bit-identical to a flat Engine
// for every shard count, shards=1 included.
func NewShardedEngine(shards int, nodeShard []int32) *ShardedEngine {
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewShardedEngine(%d)", shards))
	}
	se := &ShardedEngine{
		shards:    make([]*Engine, shards),
		nodeShard: nodeShard,
	}
	for i := range se.shards {
		se.shards[i] = &Engine{seqp: &se.seq}
	}
	for n, s := range nodeShard {
		if int(s) < 0 || int(s) >= shards {
			panic(fmt.Sprintf("sim: node %d mapped to shard %d of %d", n, s, shards))
		}
	}
	return se
}

// NewParallelEngine returns a parallel-window sharded kernel with the
// given conservative lookahead. Shards keep independent sequence
// counters (workers must not contend on one), so ties at equal timestamps
// resolve by (sequence, shard) under lockstep execution and by the merge
// rule under RunParallel. Cross-shard scheduling goes through Shard.Send
// and must respect the lookahead.
func NewParallelEngine(shards int, nodeShard []int32, lookahead Time) *ShardedEngine {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewParallelEngine lookahead %v", lookahead))
	}
	se := NewShardedEngine(shards, nodeShard)
	se.parallel = true
	se.lookahead = lookahead
	for _, sh := range se.shards {
		sh.seqp = nil // per-shard counters: windows assign seqs concurrently
	}
	se.handles = make([]*Shard, shards)
	for i := range se.handles {
		se.handles[i] = &Shard{
			se:  se,
			id:  i,
			eng: se.shards[i],
			out: make([][]crossEvent, shards),
		}
	}
	return se
}

// NumShards reports the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Lookahead reports the conservative cross-shard bound (zero in lockstep
// mode, which needs none).
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// ShardOf reports the shard owning a node.
func (se *ShardedEngine) ShardOf(node int) int { return int(se.nodeShard[node]) }

// CurrentShard reports the shard whose events are executing: meaningful
// inside a single-threaded window (RunWindowed) and under lockstep;
// parallel-window workers must not call it — they know their own shard
// from their handle.
func (se *ShardedEngine) CurrentShard() int { return se.cur }

// ShardHandle returns the handle workloads use to schedule on a shard in
// parallel mode.
func (se *ShardedEngine) ShardHandle(i int) *Shard {
	if !se.parallel {
		panic("sim: ShardHandle on a lockstep ShardedEngine")
	}
	return se.handles[i]
}

// SetRunMode selects what Run executes. Window modes require a
// parallel-capable engine (NewParallelEngine); a lockstep engine has no
// outboxes or lookahead to run a window protocol with. The mode may be
// changed between runs, never inside one.
func (se *ShardedEngine) SetRunMode(m RunMode) {
	if m != RunLockstep && !se.parallel {
		panic("sim: window run modes need NewParallelEngine")
	}
	if se.running || se.inWindow {
		panic("sim: SetRunMode inside a window")
	}
	se.mode = m
}

// Mode reports the configured run mode.
func (se *ShardedEngine) Mode() RunMode { return se.mode }

// OnBarrier registers fn to run at every window barrier, after the
// cross-shard outboxes have merged and before the next horizon is
// chosen. Hooks run in registration order on the coordinating goroutine;
// they are the defer-to-barrier half of the shard-ownership discipline
// (the network model applies its cross-shard link reservations here).
// Lockstep runs never execute barriers.
func (se *ShardedEngine) OnBarrier(fn func()) {
	se.barriers = append(se.barriers, fn)
}

func (se *ShardedEngine) runBarriers() {
	for _, fn := range se.barriers {
		fn()
	}
}

// Deferring reports whether a conservative window is executing right
// now — the condition under which cross-shard effects must buffer
// (outboxes, reservation lists) and drain at the barrier instead of
// landing directly.
func (se *ShardedEngine) Deferring() bool { return se.running || se.inWindow }

// WindowFloor reports the conservative lower bound on the start time of
// any booking made by in-flight events: the current window's minimum
// event time in window modes, the global clock in lockstep. GapResources
// owned by a windowed machine use it as their pruning clock — pruning
// against the *window floor* instead of the fired-event clock is what
// keeps barrier-applied reservations (whose start may precede the
// horizon) inside the prune-safe region.
func (se *ShardedEngine) WindowFloor() Time {
	if se.mode == RunLockstep {
		return se.now
	}
	return se.windowFloor
}

// Now reports the current virtual time (the global clock: the timestamp
// of the most recently fired event, or the deadline RunUntil advanced
// to). Inside a single-threaded window this is the executing shard's
// local clock, so Schedule-relative delays and causality checks see the
// event's own time exactly as they would under lockstep.
func (se *ShardedEngine) Now() Time {
	if se.inWindow {
		return se.shards[se.cur].now
	}
	return se.now
}

// Fired reports how many events have executed across all shards.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, sh := range se.shards {
		n += sh.fired
	}
	return n
}

// Pending reports the number of scheduled, uncancelled events across all
// shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.live
	}
	return n
}

// Schedule runs fn after delay units of virtual time on the current shard.
//
//simlint:hotpath
func (se *ShardedEngine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return se.At(se.Now()+delay, fn)
}

// ScheduleArg is the closure-free Schedule form.
//
//simlint:hotpath
func (se *ShardedEngine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		delay = 0
	}
	return se.AtArg(se.Now()+delay, fn, arg)
}

// At runs fn at absolute time t on the current shard (the shard whose
// event is executing, so self-rescheduling stays local). Which shard holds
// an event never affects lockstep order — the shared counter does.
//
//simlint:hotpath
func (se *ShardedEngine) At(t Time, fn func()) *Event {
	return se.route(se.cur).At(se.check(t), fn)
}

// AtArg is the closure-free At form.
//
//simlint:hotpath
func (se *ShardedEngine) AtArg(t Time, fn func(any), arg any) *Event {
	return se.route(se.cur).AtArg(se.check(t), fn, arg)
}

// AtNode books fn at t into the heap of the shard owning node.
//
//simlint:hotpath
func (se *ShardedEngine) AtNode(node int, t Time, fn func()) *Event {
	shard := int(se.nodeShard[node])
	se.checkCross(shard, t)
	return se.route(shard).At(se.check(t), fn)
}

// AtNodeArg is the closure-free AtNode form.
//
//simlint:hotpath
func (se *ShardedEngine) AtNodeArg(node int, t Time, fn func(any), arg any) *Event {
	shard := int(se.nodeShard[node])
	se.checkCross(shard, t)
	return se.route(shard).AtArg(se.check(t), fn, arg)
}

// check enforces the flat engine's causality panic against the *global*
// clock (shard-local clocks lag it between their turns; inside a window
// Now() is the executing shard's clock, i.e. the event's own time).
func (se *ShardedEngine) check(t Time) Time {
	if now := se.Now(); t < now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, now))
	}
	return t
}

// checkCross is the windowed-mode tripwire: a cross-shard schedule below
// the window horizon would fire (or miss firing) depending on which
// shards have already taken their turn this window — results would
// depend on the shard count. Any cross-shard effect landing inside the
// window must go through an outbox or a barrier hook instead; anything
// at or past the horizon is legal, and the conservative lookahead
// guarantees physically-delayed effects always are.
func (se *ShardedEngine) checkCross(shard int, t Time) {
	if se.inWindow && shard != se.cur && t < se.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard schedule at %v inside window ending %v (defer through the barrier)",
			t, se.windowEnd))
	}
}

func (se *ShardedEngine) route(shard int) *Engine {
	if se.running {
		panic("sim: ShardedEngine scheduling during a parallel window; use Shard handles")
	}
	return se.shards[shard]
}

// pickMin scans shard heaps for the globally minimal (time, sequence,
// shard) key. In lockstep mode sequences are globally unique so the shard
// index never decides; it only breaks ties between independent counters in
// parallel-mode lockstep debugging runs.
func (se *ShardedEngine) pickMin() (shard int, at Time, ok bool) {
	shard = -1
	var bs uint64
	for i, sh := range se.shards {
		a, s, live := sh.peek()
		if !live {
			continue
		}
		if shard < 0 || a < at || (a == at && s < bs) {
			shard, at, bs = i, a, s
		}
	}
	return shard, at, shard >= 0
}

// Step fires the single globally next event. It reports false when no
// events remain on any shard.
func (se *ShardedEngine) Step() bool {
	shard, at, ok := se.pickMin()
	if !ok {
		return false
	}
	se.cur = shard
	se.now = at
	return se.shards[shard].Step()
}

// Run fires events until none remain and returns the number fired,
// executing whatever the configured run mode prescribes: lockstep
// (default), single-threaded conservative windows, or parallel windows.
func (se *ShardedEngine) Run() uint64 {
	switch se.mode {
	case RunWindowed:
		return se.RunWindowed()
	case RunParallel:
		return se.RunParallel()
	}
	var n uint64
	for se.Step() {
		n++
	}
	return n
}

// RunUntil fires events with timestamps <= deadline, then advances the
// global and per-shard clocks to the deadline.
func (se *ShardedEngine) RunUntil(deadline Time) uint64 {
	var n uint64
	for {
		shard, at, ok := se.pickMin()
		if !ok || at > deadline {
			break
		}
		se.cur = shard
		se.now = at
		se.shards[shard].Step()
		n++
	}
	for _, sh := range se.shards {
		if sh.now < deadline {
			sh.now = deadline
		}
	}
	if se.now < deadline {
		se.now = deadline
	}
	return n
}

// RunFor is RunUntil(Now()+d).
func (se *ShardedEngine) RunFor(d Time) uint64 { return se.RunUntil(se.now + d) }

// SetProbe installs p behind a wrapper that reports the *global* pending
// count, so probed runs observe exactly what a flat engine would.
func (se *ShardedEngine) SetProbe(p Probe) {
	se.probe = p
	var w Probe
	if p != nil {
		w = &shardProbe{se}
	}
	for _, sh := range se.shards {
		sh.SetProbe(w)
	}
}

// Probe reports the installed probe, if any.
func (se *ShardedEngine) Probe() Probe { return se.probe }

// shardProbe adapts shard-local probe calls to the global view: the
// pending count a flat engine would have reported is the sum over shards.
type shardProbe struct{ se *ShardedEngine }

func (w *shardProbe) EventFired(now Time, _ int) {
	w.se.probe.EventFired(now, w.se.Pending())
}
func (w *shardProbe) Booking(r Booked, at, start, end Time) {
	w.se.probe.Booking(r, at, start, end)
}
func (w *shardProbe) FaultNoted(kind FaultKind, now Time) {
	w.se.probe.FaultNoted(kind, now)
}

// InstallShardStats equips every shard with its own KernelStats collector
// (parallel windows must not share one) and returns them in shard order;
// fold with MergeKernelStats after the run.
func (se *ShardedEngine) InstallShardStats() []*KernelStats {
	out := make([]*KernelStats, len(se.shards))
	for i, sh := range se.shards {
		out[i] = NewKernelStats()
		sh.SetProbe(out[i])
	}
	return out
}

// MergeKernelStats folds per-shard collectors into one snapshot. Counters
// and busy totals sum exactly; PeakPending is the sum of per-shard peaks,
// a conservative upper bound (the per-shard highs need not coincide).
func MergeKernelStats(parts ...*KernelStats) *KernelStats {
	m := NewKernelStats()
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.Events += p.Events
		m.Bookings += p.Bookings
		m.BookedTime += p.BookedTime
		m.PeakPending += p.PeakPending
		for k, c := range p.Faults {
			m.Faults[k] += c
		}
		for r, busy := range p.byRes {
			m.byRes[r] += busy
		}
	}
	return m
}

// crossEvent is one buffered cross-shard send awaiting merge.
type crossEvent struct {
	at  Time
	fn  func(any)
	arg any
}

// Shard is a worker's handle onto one shard of a parallel-window kernel:
// local scheduling books straight into the shard's heap; cross-shard
// sends buffer in single-writer outboxes merged at the window barrier.
type Shard struct {
	se   *ShardedEngine //simlint:shared -- coordinator backref: Send reads immutable routing tables through it; worker ownership stops here
	id   int
	eng  *Engine
	out  [][]crossEvent //simlint:outbox -- per destination shard: Send is the single appender, mergeOutboxes drains at the window barrier
	work chan Time
	done chan uint64
}

// ID reports the shard index.
func (s *Shard) ID() int { return s.id }

// Now reports the shard-local clock.
func (s *Shard) Now() Time { return s.eng.Now() }

// At books a shard-local event. Safe inside a window: only this shard's
// worker touches this heap.
//
//simlint:hotpath
func (s *Shard) At(t Time, fn func()) *Event { return s.eng.At(t, fn) }

// AtArg is the closure-free local form.
//
//simlint:hotpath
func (s *Shard) AtArg(t Time, fn func(any), arg any) *Event { return s.eng.AtArg(t, fn, arg) }

// Send schedules fn(arg) at absolute time t on the shard owning node.
// Same-shard sends book directly. Cross-shard sends buffer in this
// shard's outbox for the destination and merge at the next barrier, so t
// must respect the kernel lookahead: inside a window it must be at or
// beyond the window horizon, which any delay >= the configured lookahead
// guarantees. Violations panic — a too-small delay would let results
// depend on the shard count.
//
//simlint:hotpath
//simlint:outbox-transfer -- the audited cross-shard hand-off verb: same-shard books directly, cross-shard buffers past the horizon (the panic above enforces the lookahead)
func (s *Shard) Send(node int, t Time, fn func(any), arg any) {
	dst := int(s.se.nodeShard[node])
	if dst == s.id {
		s.eng.AtArg(t, fn, arg)
		return
	}
	if !s.se.Deferring() {
		// No window active (lockstep execution, setup, or a barrier
		// callback): the caller's goroutine is the only one running, so
		// book straight into the owner's heap.
		s.se.shards[dst].AtArg(t, fn, arg)
		return
	}
	if t < s.se.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard send at %v inside window ending %v (lookahead %v violated)",
			t, s.se.windowEnd, s.se.lookahead))
	}
	s.out[dst] = append(s.out[dst], crossEvent{at: t, fn: fn, arg: arg})
}

// RunParallel drives conservative windows until no shard holds events,
// returning the number fired. The caller's goroutine coordinates; one
// worker per shard executes. Probes must be per-shard (InstallShardStats)
// — a single shared probe would race.
//
//simlint:shard-worker -- coordinator half of the window protocol: hands horizons to workers and barriers on their replies
func (se *ShardedEngine) RunParallel() uint64 {
	if !se.parallel {
		panic("sim: RunParallel on a lockstep ShardedEngine")
	}
	if se.probe != nil {
		panic("sim: RunParallel with a shared probe; use InstallShardStats")
	}
	se.mode = RunParallel
	se.startWorkers()
	defer se.stopWorkers()
	var fired uint64
	for {
		_, m, ok := se.pickMin()
		if !ok {
			break
		}
		horizon := m + se.lookahead
		se.windowEnd = horizon
		// The floor must be in place before workers release: resources
		// clocked by WindowFloor prune against it from worker bookings,
		// and the channel send below publishes the write.
		se.windowFloor = m
		se.running = true
		for _, sh := range se.handles {
			sh.work <- horizon
		}
		for _, sh := range se.handles {
			fired += <-sh.done
		}
		se.running = false
		if se.now < horizon-1 {
			se.now = horizon - 1
		}
		se.mergeOutboxes()
		se.runBarriers()
	}
	// Settle the final clock on the last event actually fired, as Run()
	// does — the window loop overshoots it by up to lookahead-1.
	var end Time
	for _, sh := range se.shards {
		if sh.fired > 0 && sh.lastAt > end {
			end = sh.lastAt
		}
	}
	if fired > 0 {
		se.now = end
	}
	return fired
}

// RunWindowed drives the same conservative window protocol as
// RunParallel — identical horizons, identical outbox merge, identical
// barrier hooks — entirely on the caller's goroutine: each window, the
// shards take their turns sequentially, each firing its local events
// strictly below the horizon. Cross-shard sends still buffer in the
// outboxes and deferred reservations still drain at the barrier, so a
// subsystem sees exactly the protocol RunParallel would hand it; only
// the goroutines are gone. This is the mode the full machine stack runs
// under: its layers share coordinator-side state (pools, counters,
// caches) that one goroutine may touch freely, while every cross-shard
// effect rides the window machinery that the parallel mode exercises
// under the race detector.
func (se *ShardedEngine) RunWindowed() uint64 {
	if !se.parallel {
		panic("sim: RunWindowed on a lockstep ShardedEngine")
	}
	se.mode = RunWindowed
	var fired uint64
	for {
		_, m, ok := se.pickMin()
		if !ok {
			break
		}
		horizon := m + se.lookahead
		se.windowEnd = horizon
		se.windowFloor = m
		se.inWindow = true
		for i := range se.shards {
			se.cur = i
			fired += se.shards[i].RunUntil(horizon - 1)
		}
		se.inWindow = false
		if se.now < horizon-1 {
			se.now = horizon - 1
		}
		se.mergeOutboxes()
		se.runBarriers()
	}
	var end Time
	for _, sh := range se.shards {
		if sh.fired > 0 && sh.lastAt > end {
			end = sh.lastAt
		}
	}
	if fired > 0 {
		se.now = end
	}
	return fired
}

// mergeOutboxes drains every (source, destination) outbox at a barrier.
// The deterministic merge rule: destinations take sources in ascending
// shard ID, events in emission order. The heap already orders by (time,
// sequence) and sequence order is insertion order, so ties at equal
// timestamps resolve by (source shard, emission index) — independent of
// how the workers were scheduled onto OS threads.
//
//simlint:outbox-transfer -- barrier-side drain: runs on the coordinator between windows, after every worker has replied on done
func (se *ShardedEngine) mergeOutboxes() {
	for dst, dh := range se.handles {
		for _, src := range se.handles {
			box := src.out[dst]
			for i := range box {
				dh.eng.AtArg(box[i].at, box[i].fn, box[i].arg)
				box[i] = crossEvent{}
			}
			src.out[dst] = box[:0]
		}
	}
}

//simlint:shard-worker -- window coordination channels: created here, used only by the shape-verified worker loop below
func (se *ShardedEngine) startWorkers() {
	if se.started {
		return
	}
	se.started = true
	for _, h := range se.handles {
		sh := h
		sh.work = make(chan Time)
		sh.done = make(chan uint64)
		// Locals, not fields: workers must never re-read handle fields the
		// coordinator later clears.
		work, done := sh.work, sh.done
		//simlint:shard-worker -- conservative-window worker: blocks on work, runs its shard strictly below the horizon, reports on done
		go func() {
			for {
				horizon, ok := <-work
				if !ok {
					return
				}
				n := sh.eng.RunUntil(horizon - 1)
				done <- n
			}
		}()
	}
}

//simlint:shard-worker -- closing the work channels is the workers' only termination signal
func (se *ShardedEngine) stopWorkers() {
	if !se.started {
		return
	}
	se.started = false
	for _, sh := range se.handles {
		close(sh.work)
		sh.work = nil
		sh.done = nil
	}
}
