package sim

// PEResource models a serially reusable processor: requests queue strictly
// FIFO behind the last booking (busy-until discipline). This is right for
// PE CPUs and comm-thread CPUs, whose bookings are issued in execution
// order by the scheduler and progress engine.
type PEResource struct {
	name      Name
	busyUntil Time
	busyTotal Time
	acquires  uint64
	probe     Probe
}

// NewPEResource returns an idle FIFO (busy-until) resource.
func NewPEResource(name Name) *PEResource {
	return &PEResource{name: name}
}

// InitPEResource initializes r in place with NewPEResource semantics, for
// callers that slab-allocate one array of per-PE resources.
func InitPEResource(r *PEResource, name Name) {
	*r = PEResource{name: name}
}

// SetProbe installs p to observe every booking (nil disables).
func (r *PEResource) SetProbe(p Probe) { r.probe = p }

// Name reports the diagnostic name given at construction.
func (r *PEResource) Name() string { return r.name.String() }

// Acquire books the resource for dur units starting no earlier than at and
// returns the booked interval [start, end).
func (r *PEResource) Acquire(at, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.acquires++
	r.busyTotal += dur
	start = at
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + dur
	r.busyUntil = end
	if r.probe != nil {
		r.probe.Booking(r, at, start, end)
	}
	return start, end
}

// FreeAt reports the time after which the resource is idle forever given
// current bookings (the queue tail).
func (r *PEResource) FreeAt() Time { return r.busyUntil }

// BusyTotal reports the cumulative booked time.
func (r *PEResource) BusyTotal() Time { return r.busyTotal }

// Acquires reports how many bookings have been made.
func (r *PEResource) Acquires() uint64 { return r.acquires }

// Utilization reports busyTotal / window, clamped to [0, 1]; it is a
// convenience for load reporting.
func (r *PEResource) Utilization(window Time) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to idle and clears statistics.
func (r *PEResource) Reset() {
	r.busyUntil = 0
	r.busyTotal = 0
	r.acquires = 0
}
