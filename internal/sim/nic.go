package sim

// NICEngine is the kernel's view of one message-carrying engine: anything
// that can book serialized transfer time and deliver a completion. The
// Gemini model's FMA, BTE, SMSG, and MSGQ units implement it over gap
// resources and torus links; the shm loopback implements it over the
// memory cost model. Machine layers program against this interface, so
// every transfer — inter-node or intra-node — books through one audited
// path.
type NICEngine interface {
	// Name labels the engine for diagnostics.
	Name() string
	// Ready reports the earliest time at or after `at` the engine could
	// begin a zero-length transfer (i.e. its next idle instant). It must
	// not book anything.
	Ready(at Time) Time
	// Serialization reports the engine-side serialization time of a
	// payload of the given size.
	Serialization(size int) Time
	// Transfer books a transfer of size bytes to dst, becoming eligible
	// at ready. It returns when the source side is done with the
	// transaction and when the payload is visible at the destination.
	Transfer(dst, size int, ready Time) (srcDone, dstArrive Time)
	// TransferThen books like Transfer but delivers the destination
	// arrival time through done(arg, dstArrive) instead of returning it.
	// Engines whose booking completes immediately call done synchronously
	// before returning; an engine running inside a conservative shard
	// window defers the callback to the window barrier when the transfer
	// crosses the shard partition (its path bookings are applied there in
	// deterministic order). done runs exactly once, on the coordinating
	// goroutine, and must not assume it ran before TransferThen returned.
	// The source-side completion is always known synchronously: the
	// source engine is shard-local by construction.
	TransferThen(dst, size int, ready Time, done func(arg any, dstArrive Time), arg any) (srcDone Time)
	// Enqueue schedules a completion callback at the given time on the
	// engine's event loop.
	Enqueue(at Time, fn func())
	// EnqueueArg is the closure-free form of Enqueue: fn(arg) runs at the
	// given time. With fn a package-level function and arg pooled state,
	// scheduling a completion allocates nothing (see Engine.AtArg).
	EnqueueArg(at Time, fn func(any), arg any)
}
