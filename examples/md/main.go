// Molecular dynamics example: the mini-NAMD proxy (patches, pairwise
// computes, PME pencils, greedy load balancing) on a mid-size simulated
// machine — the paper's Section V-D workload at example scale.
//
// Run: go run ./examples/md
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/md"
)

func main() {
	const cores = 96
	fmt.Printf("mini-NAMD, DHFR (%d atoms), PME every step, %d cores\n\n", md.DHFR.Atoms, cores)

	for _, layer := range []charmgo.LayerKind{charmgo.LayerUGNI, charmgo.LayerMPI} {
		m := charmgo.NewMachine(charmgo.MachineConfig{
			Nodes: cores / 24, CoresPerNode: 24, Layer: layer,
		})
		res := md.Run(m, md.Config{
			System: md.DHFR, Steps: 4, Warmup: 2, LB: true, Seed: 7,
		})
		fmt.Printf("%5s layer: %s", layer, res)
		if res.Migrations > 0 {
			fmt.Printf(" (LB moved %d computes)", res.Migrations)
		}
		fmt.Println()
		for i, dt := range res.StepTimes {
			fmt.Printf("        step %d: %v\n", i, dt)
		}
	}
}
