// AMPI example: an MPI-style ring program with blocking Send/Recv and an
// Allreduce, running as user-level threads on the message-driven runtime
// (paper Section III-A). Note the virtualization: 16 ranks share 8 PEs.
//
// Run: go run ./examples/ampi
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/ampi"
)

func main() {
	m := charmgo.NewMachine(charmgo.MachineConfig{
		Nodes: 2, CoresPerNode: 4, Layer: charmgo.LayerUGNI,
	})
	const ranks = 16
	fmt.Printf("AMPI ring over %d ranks on %d PEs\n\n", ranks, m.NumPEs())

	end := ampi.Run(m, ranks, func(r *ampi.Rank) {
		// Pass a token around the ring, each rank adding its id.
		token := 0
		if r.Rank() == 0 {
			r.Send(1, 1, token, 64)
			token = r.Recv(ranks-1, 1).Data.(int)
			fmt.Printf("token completed the ring with value %d at %v\n", token, r.Now())
		} else {
			token = r.Recv(r.Rank()-1, 1).Data.(int) + r.Rank()
			r.Send((r.Rank()+1)%ranks, 1, token, 64)
		}

		// A blocking collective across all ranks.
		sum := r.Allreduce(float64(r.Rank()), func(a, b float64) float64 { return a + b })
		if r.Rank() == 0 {
			fmt.Printf("allreduce(sum of ranks) = %.0f at %v\n", sum, r.Now())
		}
	})
	fmt.Printf("\njob finished at %v of virtual time\n", end)
}
