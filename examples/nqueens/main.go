// N-Queens example: the paper's Section V-C workload — task-based state
// space search with grain-size control, run on both machine layers for a
// side-by-side comparison (the uGNI layer wins because per-message
// overhead dominates fine-grain task parallelism).
//
// Run: go run ./examples/nqueens
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/ssse"
)

func main() {
	const (
		n         = 12
		threshold = 5
		nodes     = 4
		cores     = 8
	)
	fmt.Printf("%d-queens, threshold %d, on %d simulated cores\n\n", n, threshold, nodes*cores)

	for _, layer := range []charmgo.LayerKind{charmgo.LayerUGNI, charmgo.LayerMPI} {
		m := charmgo.NewMachine(charmgo.MachineConfig{
			Nodes: nodes, CoresPerNode: cores, Layer: layer,
		})
		res := ssse.Run(m, ssse.Config{N: n, Threshold: threshold, Seed: 42})
		status := "WRONG"
		if res.Solutions == ssse.Solutions[n] {
			status = "verified"
		}
		fmt.Printf("%5s layer: %d solutions (%s), %d tasks, solved in %v\n",
			layer, res.Solutions, status, res.Tasks, res.Elapsed)
	}
}
