// Quickstart: the smallest complete charmgo program — a message-driven
// ring relay across a simulated 2-node Cray XE6, printing the virtual-time
// hop latencies on the uGNI machine layer.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"charmgo"
)

func main() {
	m := charmgo.NewMachine(charmgo.MachineConfig{
		Nodes:        2,
		CoresPerNode: 4,
		Layer:        charmgo.LayerUGNI,
	})
	n := m.NumPEs()

	const hops = 16
	count := 0
	var relay int
	relay = m.RegisterHandler(func(ctx *charmgo.Ctx, msg *charmgo.Message) {
		fmt.Printf("hop %2d on PE %d at %v\n", count, ctx.PE(), ctx.Now())
		count++
		// Pretend to do a little work before passing the token on.
		ctx.Compute(2 * charmgo.Microsecond)
		if count < hops {
			ctx.Send((ctx.PE()+1)%n, relay, "token", 64)
		}
	})

	m.Inject(0, relay, "token", 64, 0)
	end := m.Run()
	fmt.Printf("\n%d hops around %d PEs in %v of virtual time\n", hops, n, end)
	fmt.Printf("machine layer: %s, stats: %v\n", m.Layer().Name(), m.Layer().Stats())
}
