// kNeighbor example: the paper's Figure 10 contention benchmark — every
// core exchanges messages with its k nearest ring neighbours each
// iteration. The uGNI layer overlaps the BTE transfers; the MPI layer's
// blocking receive serializes them, which is why its curve sits ~2x higher
// for large messages.
//
// Run: go run ./examples/kneighbor
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/bench"
	"charmgo/internal/stats"
)

func main() {
	const cores, k = 3, 1
	fmt.Printf("kNeighbor: %d cores on %d nodes, k=%d\n\n", cores, cores, k)

	t := stats.NewTable("per-iteration time (us)", "size", "charm/ugni", "charm/mpi", "ratio")
	for size := 32; size <= 1<<20; size *= 8 {
		u := bench.KNeighbor(charmgo.LayerUGNI, cores, k, size)
		m := bench.KNeighbor(charmgo.LayerMPI, cores, k, size)
		t.Add(stats.SizeLabel(size), u.Micros(), m.Micros(),
			fmt.Sprintf("%.2fx", float64(m)/float64(u)))
	}
	fmt.Println(t.String())
}
