// Stencil example: 2D Jacobi with halo exchange — the fixed repeating
// communication pattern the paper's persistent-message API (Section IV-A)
// was designed for. Runs the same problem with regular rendezvous halos
// and with persistent channels on inter-node edges.
//
// Run: go run ./examples/stencil
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/stencil"
)

func main() {
	cfg := stencil.Config{
		BlocksX: 8, BlocksY: 6,
		BlockSize:  256, // communication-heavy: small compute per tile
		Iterations: 12,
	}
	fmt.Printf("2D Jacobi, %dx%d blocks of %d^2 cells, %d iterations\n\n",
		cfg.BlocksX, cfg.BlocksY, cfg.BlockSize, cfg.Iterations)

	run := func(label string, persistent bool) {
		m := charmgo.NewMachine(charmgo.MachineConfig{
			Nodes: 2, CoresPerNode: 24, Layer: charmgo.LayerUGNI,
		})
		c := cfg
		c.Persistent = persistent
		res := stencil.Run(m, c)
		fmt.Printf("%-22s %v/iteration (final residual %.6f)\n", label, res.PerIteration, res.Residual)
	}
	run("rendezvous halos:", false)
	run("persistent channels:", true)
}
